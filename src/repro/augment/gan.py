"""GAN-based pattern augmentation (Section 4.1).

Implements the paper's setup: a Relativistic GAN (RGAN) whose discriminator
uses spectral normalization, trained on patterns resized to a fixed square
(side = min(cap, average pattern side); the paper caps at 100 px and we
default the cap lower because our benchmark images are scale-reduced).
Generated patterns are resized back to one of the original pattern sizes so
they match defects at realistic scales.  Hyper-parameters follow Section 6.1:
noise dimension 100, generator/discriminator learning rates 1e-4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.imaging.ops import resize
from repro.nn.layers import Dense, LeakyReLU, Sigmoid
from repro.nn.losses import (
    gan_discriminator_loss,
    gan_generator_loss,
    rgan_discriminator_loss,
    rgan_generator_loss,
)
from repro.nn.network import Sequential
from repro.nn.optim import Adam
from repro.nn.spectral_norm import SpectralNormDense
from repro.patterns import Pattern
from repro.utils.rng import as_rng

__all__ = ["RGANConfig", "RelativisticGAN", "gan_augment"]


@dataclass(frozen=True)
class RGANConfig:
    """GAN hyper-parameters (paper values: z_dim 100, lr 1e-4, ~1k epochs).

    ``relativistic=False`` switches to the original GAN objective
    [Goodfellow et al. 2014], ablating the paper's choice of RGAN ("which
    can efficiently generate more realistic patterns than the original
    GAN").
    """

    z_dim: int = 100
    lr: float = 1e-4
    epochs: int = 400
    batch_size: int = 16
    side_cap: int = 24
    hidden: tuple[int, ...] = (128, 256)
    relativistic: bool = True

    def __post_init__(self) -> None:
        if self.z_dim < 1 or self.epochs < 1 or self.batch_size < 1:
            raise ValueError("z_dim, epochs and batch_size must be positive")
        if self.lr <= 0:
            raise ValueError("lr must be positive")
        if self.side_cap < 4:
            raise ValueError("side_cap must be >= 4")


def pattern_square_side(patterns: list[Pattern], cap: int) -> int:
    """Fixed square side: min(cap, average of all pattern widths/heights)."""
    dims = [d for p in patterns for d in p.shape]
    return int(max(4, min(cap, round(float(np.mean(dims))))))


class RelativisticGAN:
    """RGAN over flattened square patterns.

    The generator maps noise to a pattern through an MLP with a sigmoid
    output (pixels in [0, 1]); the discriminator is an MLP whose dense
    layers are spectrally normalized.  Training uses the relativistic
    objectives from :mod:`repro.nn.losses`.
    """

    def __init__(
        self,
        side: int,
        config: RGANConfig | None = None,
        seed: int | np.random.Generator | None = 0,
    ):
        if side < 4:
            raise ValueError(f"side must be >= 4, got {side}")
        self.config = config or RGANConfig()
        self.side = side
        self._rng = as_rng(seed)
        out_dim = side * side
        cfg = self.config

        gen_layers: list = []
        prev = cfg.z_dim
        for width in cfg.hidden:
            gen_layers += [Dense(prev, width, rng=self._rng), LeakyReLU(0.2)]
            prev = width
        gen_layers += [Dense(prev, out_dim, rng=self._rng), Sigmoid()]
        self.generator = Sequential(*gen_layers)

        disc_layers: list = []
        prev = out_dim
        for width in reversed(cfg.hidden):
            disc_layers += [SpectralNormDense(prev, width, rng=self._rng),
                            LeakyReLU(0.2)]
            prev = width
        disc_layers.append(SpectralNormDense(prev, 1, rng=self._rng))
        self.discriminator = Sequential(*disc_layers)

        self._opt_g = Adam(self.generator.params(), self.generator.grads(),
                           lr=cfg.lr)
        self._opt_d = Adam(self.discriminator.params(),
                           self.discriminator.grads(), lr=cfg.lr)
        self.d_loss_history: list[float] = []
        self.g_loss_history: list[float] = []

    def _sample_noise(self, n: int) -> np.ndarray:
        return self._rng.normal(0.0, 1.0, size=(n, self.config.z_dim))

    def fit(self, real: np.ndarray) -> None:
        """Train on flattened real patterns of shape (n, side*side)."""
        if real.ndim != 2 or real.shape[1] != self.side * self.side:
            raise ValueError(
                f"expected real patterns of shape (n, {self.side * self.side}), "
                f"got {real.shape}"
            )
        cfg = self.config
        n = real.shape[0]
        for _ in range(cfg.epochs):
            order = self._rng.permutation(n)
            for start in range(0, n, cfg.batch_size):
                batch = real[order[start : start + cfg.batch_size]]
                if batch.shape[0] < 1:
                    continue
                d_loss, g_loss = self._update(batch)
            self.d_loss_history.append(d_loss)
            self.g_loss_history.append(g_loss)

    def _update(self, batch: np.ndarray) -> tuple[float, float]:
        m = batch.shape[0]
        relativistic = self.config.relativistic

        # Discriminator step: forward real and fake through D separately so
        # each backward pass accumulates the right gradients.
        z = self._sample_noise(m)
        fake = self.generator.forward(z)
        self.discriminator.zero_grad()
        d_real = self.discriminator.forward(batch)
        d_fake = self.discriminator.forward(fake)
        if relativistic:
            d_loss, grad_dr, grad_df = rgan_discriminator_loss(d_real, d_fake)
        else:
            d_loss, grad_dr, grad_df = gan_discriminator_loss(d_real, d_fake)
        # Backprop fake path first (it was the most recent forward), then
        # re-forward real to backprop its path.
        self.discriminator.backward(grad_df)
        self.discriminator.forward(batch)
        self.discriminator.backward(grad_dr)
        self._opt_d.step()

        # Generator step: push fakes to out-score reals.
        z = self._sample_noise(m)
        self.generator.zero_grad()
        self.discriminator.zero_grad()
        fake = self.generator.forward(z)
        d_fake = self.discriminator.forward(fake)
        if relativistic:
            d_real = self.discriminator.forward(batch)  # constants for G
            g_loss, grad_dfake = rgan_generator_loss(d_real, d_fake)
            # Re-forward the fake path so discriminator caches match.
            self.discriminator.forward(fake)
        else:
            g_loss, grad_dfake = gan_generator_loss(d_fake)
        grad_fake_pixels = self.discriminator.backward(grad_dfake)
        self.generator.backward(grad_fake_pixels)
        self._opt_g.step()
        return d_loss, g_loss

    def generate(self, n: int) -> np.ndarray:
        """Sample ``n`` fake patterns, shape (n, side, side), values [0, 1]."""
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        self.generator.set_training(False)
        z = self._sample_noise(n)
        flat = self.generator.forward(z)
        self.generator.set_training(True)
        return flat.reshape(n, self.side, self.side)


def gan_augment(
    patterns: list[Pattern],
    n_patterns: int,
    config: RGANConfig | None = None,
    seed: int | np.random.Generator | None = 0,
) -> list[Pattern]:
    """Train an RGAN per defect class and sample ``n_patterns`` new patterns.

    Follows Figure 6: resize real patterns to a fixed square, train, sample,
    then resize each fake back to one of the original pattern shapes (drawn
    uniformly), so generated patterns match defects at native scales.
    """
    if n_patterns < 0:
        raise ValueError(f"n_patterns must be >= 0, got {n_patterns}")
    if not patterns:
        raise ValueError("need source patterns to augment")
    if n_patterns == 0:
        return []
    config = config or RGANConfig()
    rng = as_rng(seed)
    by_label: dict[int, list[Pattern]] = {}
    for p in patterns:
        by_label.setdefault(p.label, []).append(p)

    out: list[Pattern] = []
    labels = sorted(by_label)
    # Allocate generation quota proportionally to class pattern counts.
    quotas = {}
    total = len(patterns)
    for label in labels:
        quotas[label] = max(1, round(n_patterns * len(by_label[label]) / total))
    for label in labels:
        group = by_label[label]
        side = pattern_square_side(group, config.side_cap)
        real = np.stack(
            [resize(p.array, (side, side)).reshape(-1) for p in group]
        )
        gan = RelativisticGAN(side, config, seed=rng)
        gan.fit(real)
        fakes = gan.generate(quotas[label])
        shapes = [p.shape for p in group]
        for fake in fakes:
            target = shapes[int(rng.integers(0, len(shapes)))]
            arr = resize(fake, target)
            out.append(Pattern(array=np.clip(arr, 0.0, 1.0), label=label,
                               provenance="gan"))
    return out[: max(n_patterns, len(labels))]
