"""Pattern augmentation (Section 4): GAN-based and policy-based.

Patterns may be too few after crowdsourcing — especially under class
imbalance — so Inspector Gadget synthesizes more.  GAN-based augmentation
(a Relativistic GAN with spectral normalization) produces random variations
close to the existing patterns; policy-based augmentation applies searched
image-operation combinations that can produce larger but still-valid
variations.  The two complement each other (Table 4: using both usually
wins).  Augmentation operates on small patterns, never whole images, which
is what makes it tractable.
"""

from repro.augment.augmenter import AugmentConfig, PatternAugmenter
from repro.augment.gan import RGANConfig, RelativisticGAN, gan_augment
from repro.augment.policies import (
    DEFAULT_OPS,
    PolicyOp,
    apply_policy,
    get_op,
)
from repro.augment.policy_search import (
    PolicySearchConfig,
    PolicySearchResult,
    policy_augment,
    search_policies,
)

__all__ = [
    "AugmentConfig",
    "PatternAugmenter",
    "RGANConfig",
    "RelativisticGAN",
    "gan_augment",
    "PolicyOp",
    "DEFAULT_OPS",
    "apply_policy",
    "get_op",
    "PolicySearchConfig",
    "PolicySearchResult",
    "search_policies",
    "policy_augment",
]
