"""Facade combining GAN-based and policy-based pattern augmentation."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.augment.gan import RGANConfig, gan_augment
from repro.augment.policy_search import (
    PolicySearchConfig,
    PolicySearchResult,
    policy_augment,
    search_policies,
)
from repro.datasets.base import Dataset
from repro.imaging.pyramid import PyramidMatcher
from repro.patterns import Pattern
from repro.utils.rng import as_rng

__all__ = ["AugmentConfig", "AugmentOutcome", "PatternAugmenter"]

_MODES = ("none", "policy", "gan", "both")


@dataclass(frozen=True)
class AugmentConfig:
    """Which augmenters run and how many patterns each contributes.

    Table 4 toggles ``mode`` across all four values; Figure 10 sweeps the
    pattern counts.  The best counts differ per dataset but fall in the
    100-500 range at paper scale.
    """

    mode: str = "both"
    n_policy: int = 40
    n_gan: int = 40
    policy_search: PolicySearchConfig = field(default_factory=PolicySearchConfig)
    rgan: RGANConfig = field(default_factory=RGANConfig)

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {self.mode!r}")
        if self.n_policy < 0 or self.n_gan < 0:
            raise ValueError("pattern counts must be non-negative")


@dataclass
class AugmentOutcome:
    """Everything one augmentation run produced.

    ``patterns`` is the combined set (originals + synthesized);
    ``policy_result`` is the learned policy ranking when the policy searcher
    ran, kept so a cached augmentation round-trips the full augmenter state.
    """

    patterns: list[Pattern]
    policy_result: PolicySearchResult | None = None


class PatternAugmenter:
    """Runs the configured augmentations over a crowd-sourced pattern set."""

    def __init__(
        self,
        config: AugmentConfig | None = None,
        matcher: PyramidMatcher | None = None,
        seed: int | np.random.Generator | None = 0,
        n_jobs: int = 1,
    ):
        self.config = config or AugmentConfig()
        self.matcher = matcher or PyramidMatcher()
        self.n_jobs = n_jobs
        self._rng = as_rng(seed)
        self.policy_result: PolicySearchResult | None = None

    def run(self, patterns: list[Pattern], dev: Dataset) -> AugmentOutcome:
        """Augment ``patterns`` and return the full outcome.

        The development set drives the policy search; GAN training uses only
        the patterns.  In ``both`` mode the two augmented sets are simply
        concatenated, as the paper does.
        """
        if not patterns:
            raise ValueError("cannot augment an empty pattern set")
        cfg = self.config
        augmented: list[Pattern] = list(patterns)
        if cfg.mode in ("policy", "both") and cfg.n_policy > 0:
            self.policy_result = search_policies(
                patterns, dev, cfg.policy_search, self.matcher,
                seed=self._rng, n_jobs=self.n_jobs,
            )
            augmented.extend(
                policy_augment(patterns, self.policy_result, cfg.n_policy,
                               seed=self._rng)
            )
        if cfg.mode in ("gan", "both") and cfg.n_gan > 0:
            augmented.extend(
                gan_augment(patterns, cfg.n_gan, cfg.rgan, seed=self._rng)
            )
        return AugmentOutcome(patterns=augmented,
                              policy_result=self.policy_result)

    def augment(self, patterns: list[Pattern], dev: Dataset) -> list[Pattern]:
        """The combined pattern set: originals plus synthesized ones."""
        return self.run(patterns, dev).patterns
