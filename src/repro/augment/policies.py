"""Policy operations for pattern augmentation (Section 4.2).

Each policy is an image operation with a magnitude range; Figure 7 of the
paper shows examples (Brightness 1.632, Invert 0.246, ResizeX 0.872,
Rotate 7.000).  ``Invert`` takes a blend magnitude: the output interpolates
between the pattern and its photometric negative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.imaging import ops as imops
from repro.utils.rng import as_rng

__all__ = ["PolicyOp", "DEFAULT_OPS", "get_op", "apply_policy", "random_magnitudes"]


@dataclass(frozen=True)
class PolicyOp:
    """One augmentation operation with its valid magnitude range."""

    name: str
    apply: Callable[[np.ndarray, float], np.ndarray]
    magnitude_range: tuple[float, float]

    def __post_init__(self) -> None:
        lo, hi = self.magnitude_range
        if not lo < hi:
            raise ValueError(f"invalid magnitude range for {self.name}: {self.magnitude_range}")

    def sample_magnitude(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(*self.magnitude_range))


def _resize_x(image: np.ndarray, factor: float) -> np.ndarray:
    w = max(2, int(round(image.shape[1] * factor)))
    return imops.resize(image, (image.shape[0], w))


def _resize_y(image: np.ndarray, factor: float) -> np.ndarray:
    h = max(2, int(round(image.shape[0] * factor)))
    return imops.resize(image, (h, image.shape[1]))


def _invert_blend(image: np.ndarray, magnitude: float) -> np.ndarray:
    return (1.0 - magnitude) * image + magnitude * imops.invert(image)


def _translate_x(image: np.ndarray, fraction: float) -> np.ndarray:
    return imops.translate(image, 0.0, fraction * image.shape[1],
                           fill=float(image.mean()))


def _translate_y(image: np.ndarray, fraction: float) -> np.ndarray:
    return imops.translate(image, fraction * image.shape[0], 0.0,
                           fill=float(image.mean()))


def _rotate(image: np.ndarray, degrees: float) -> np.ndarray:
    return imops.rotate(image, degrees, fill=float(image.mean()))


def _shear_x(image: np.ndarray, factor: float) -> np.ndarray:
    return imops.shear_x(image, factor, fill=float(image.mean()))


def _shear_y(image: np.ndarray, factor: float) -> np.ndarray:
    return imops.shear_y(image, factor, fill=float(image.mean()))


DEFAULT_OPS: tuple[PolicyOp, ...] = (
    PolicyOp("rotate", _rotate, (-15.0, 15.0)),
    PolicyOp("resize_x", _resize_x, (0.7, 1.4)),
    PolicyOp("resize_y", _resize_y, (0.7, 1.4)),
    PolicyOp("brightness", imops.adjust_brightness, (0.7, 1.7)),
    PolicyOp("contrast", imops.adjust_contrast, (0.6, 1.6)),
    PolicyOp("invert", _invert_blend, (0.0, 0.35)),
    PolicyOp("shear_x", _shear_x, (-0.3, 0.3)),
    PolicyOp("shear_y", _shear_y, (-0.3, 0.3)),
    PolicyOp("translate_x", _translate_x, (-0.15, 0.15)),
    PolicyOp("translate_y", _translate_y, (-0.15, 0.15)),
)


def get_op(name: str) -> PolicyOp:
    """Look up a default op by name."""
    for op in DEFAULT_OPS:
        if op.name == name:
            return op
    raise KeyError(f"unknown policy op {name!r}; available: "
                   f"{[o.name for o in DEFAULT_OPS]}")


def apply_policy(
    image: np.ndarray, steps: list[tuple[PolicyOp, float]]
) -> np.ndarray:
    """Apply a sequence of (op, magnitude) steps to ``image``."""
    out = image
    for op, magnitude in steps:
        out = op.apply(out, magnitude)
    return np.clip(out, 0.0, 1.0)


def random_magnitudes(
    op: PolicyOp, n: int, rng: int | np.random.Generator | None
) -> list[float]:
    """Sample ``n`` random magnitudes within the op's range (paper: 10)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    rng = as_rng(rng)
    return [op.sample_magnitude(rng) for _ in range(n)]
