"""Policy-combination search (Section 4.2).

The paper's procedure, simpler than AutoAugment: split the development set
into train and test halves; for every combination of three policies, sample
10 random magnitudes per policy, augment the train-half patterns, train the
labeler on the train half, and evaluate on the test half; keep the best
combination and apply it to the whole pattern set.

Exhaustively iterating all C(10, 3) = 120 combinations retrains the labeler
120 times; ``max_combos`` caps the search with a seeded random subsample for
budgeted runs (the cap and its effect are logged in EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

import numpy as np

from repro.augment.policies import (
    DEFAULT_OPS,
    PolicyOp,
    apply_policy,
    random_magnitudes,
)
from repro.datasets.base import Dataset
from repro.eval.metrics import f1_score
from repro.features.generator import FeatureGenerator
from repro.imaging.pyramid import PyramidMatcher
from repro.labeler.mlp import MLPLabeler
from repro.patterns import Pattern
from repro.utils.rng import as_rng

__all__ = [
    "PolicySearchConfig",
    "PolicySearchResult",
    "search_policies",
    "policy_augment",
]


@dataclass(frozen=True)
class PolicySearchConfig:
    """Search hyper-parameters; paper defaults are combo_size=3, 10 magnitudes."""

    ops: tuple[PolicyOp, ...] = DEFAULT_OPS
    combo_size: int = 3
    n_magnitudes: int = 10
    max_combos: int | None = None
    train_fraction: float = 0.5
    labeler_hidden: tuple[int, ...] = (8,)
    labeler_max_iter: int = 60
    per_pattern_augment: int = 3

    def __post_init__(self) -> None:
        if self.combo_size < 1 or self.combo_size > len(self.ops):
            raise ValueError(
                f"combo_size must be in [1, {len(self.ops)}], got {self.combo_size}"
            )
        if self.n_magnitudes < 1:
            raise ValueError("n_magnitudes must be >= 1")
        if not 0.0 < self.train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")


@dataclass
class PolicySearchResult:
    """The winning policy combination with its sampled magnitudes."""

    ops: tuple[PolicyOp, ...]
    magnitudes: tuple[tuple[float, ...], ...]  # per op, the 10 sampled values
    score: float
    all_scores: dict[tuple[str, ...], float] = field(default_factory=dict)

    def describe(self) -> str:
        names = ", ".join(op.name for op in self.ops)
        return f"policy combo [{names}] (dev F1 {self.score:.3f})"


def _augment_patterns_with(
    patterns: list[Pattern],
    ops: tuple[PolicyOp, ...],
    magnitudes: tuple[tuple[float, ...], ...],
    n_per_pattern: int,
    rng: np.random.Generator,
) -> list[Pattern]:
    """Apply the policy combo to each pattern ``n_per_pattern`` times."""
    out: list[Pattern] = []
    for pattern in patterns:
        for _ in range(n_per_pattern):
            steps = [
                (op, mags[int(rng.integers(0, len(mags)))])
                for op, mags in zip(ops, magnitudes)
            ]
            arr = apply_policy(pattern.array, steps)
            if min(arr.shape) < 2:
                continue
            out.append(Pattern(array=arr, label=pattern.label,
                               provenance="policy",
                               source_image=pattern.source_image))
    return out


def _score_combo(
    base_patterns: list[Pattern],
    augmented: list[Pattern],
    train: Dataset,
    test: Dataset,
    n_classes: int,
    task: str,
    config: PolicySearchConfig,
    matcher: PyramidMatcher,
    rng: np.random.Generator,
    n_jobs: int = 1,
) -> float:
    """Train the labeler with base+augmented patterns, score on the test half."""
    fg = FeatureGenerator(base_patterns + augmented, matcher, n_jobs=n_jobs)
    x_train = fg.transform(train).values
    x_test = fg.transform(test).values
    labeler = MLPLabeler(
        input_dim=x_train.shape[1], hidden=config.labeler_hidden,
        n_classes=n_classes, seed=rng, max_iter=config.labeler_max_iter,
    )
    labeler.fit(x_train, train.labels)
    return f1_score(test.labels, labeler.predict(x_test), task=task)


def search_policies(
    patterns: list[Pattern],
    dev: Dataset,
    config: PolicySearchConfig | None = None,
    matcher: PyramidMatcher | None = None,
    seed: int | np.random.Generator | None = 0,
    n_jobs: int = 1,
) -> PolicySearchResult:
    """Find the policy combination that maximizes dev-set F1.

    ``n_jobs`` parallelises the feature generation inside each combination's
    scoring run (the search's dominant cost); it never changes results.
    """
    if not patterns:
        raise ValueError("need at least one pattern to search policies")
    config = config or PolicySearchConfig()
    matcher = matcher or PyramidMatcher()
    rng = as_rng(seed)
    n_classes = dev.n_classes
    task = dev.task

    # Split the dev set into train/test halves (stratified).
    from repro.datasets.base import stratified_split

    n_train = max(2, int(round(len(dev) * config.train_fraction)))
    train, test = stratified_split(dev, n_train, seed=rng)

    combos = list(combinations(range(len(config.ops)), config.combo_size))
    if config.max_combos is not None and len(combos) > config.max_combos:
        chosen = rng.choice(len(combos), size=config.max_combos, replace=False)
        combos = [combos[int(i)] for i in chosen]

    best: PolicySearchResult | None = None
    all_scores: dict[tuple[str, ...], float] = {}
    for combo in combos:
        ops = tuple(config.ops[i] for i in combo)
        mags = tuple(
            tuple(random_magnitudes(op, config.n_magnitudes, rng)) for op in ops
        )
        augmented = _augment_patterns_with(
            patterns, ops, mags, config.per_pattern_augment, rng
        )
        score = _score_combo(patterns, augmented, train, test, n_classes,
                             task, config, matcher, rng, n_jobs=n_jobs)
        key = tuple(op.name for op in ops)
        all_scores[key] = score
        if best is None or score > best.score:
            best = PolicySearchResult(ops=ops, magnitudes=mags, score=score)
    assert best is not None
    best.all_scores = all_scores
    return best


def policy_augment(
    patterns: list[Pattern],
    result: PolicySearchResult,
    n_patterns: int,
    seed: int | np.random.Generator | None = 0,
) -> list[Pattern]:
    """Generate ``n_patterns`` new patterns with the winning combination."""
    if n_patterns < 0:
        raise ValueError(f"n_patterns must be >= 0, got {n_patterns}")
    if not patterns:
        raise ValueError("need source patterns to augment")
    rng = as_rng(seed)
    out: list[Pattern] = []
    attempts = 0
    while len(out) < n_patterns and attempts < 20 * n_patterns + 20:
        attempts += 1
        pattern = patterns[int(rng.integers(0, len(patterns)))]
        steps = [
            (op, mags[int(rng.integers(0, len(mags)))])
            for op, mags in zip(result.ops, result.magnitudes)
        ]
        arr = apply_policy(pattern.array, steps)
        if min(arr.shape) < 3:
            continue
        out.append(Pattern(array=arr, label=pattern.label, provenance="policy",
                           source_image=pattern.source_image))
    return out
