"""Generative label model: combine noisy labeling functions with abstains.

The Snorkel/Snuba family combines LF votes by learning per-LF accuracies
under a conditional-independence assumption.  This implementation uses EM:

* E-step: posterior over the true label given votes and current accuracies.
* M-step: each LF's accuracy is re-estimated from the posterior mass it
  agrees with, over the examples where it did not abstain.

Votes use -1 for abstain and {0..K-1} for class votes.
"""

from __future__ import annotations

import numpy as np

__all__ = ["LabelModel"]

ABSTAIN = -1


class LabelModel:
    """EM-trained weighted vote over labeling-function outputs."""

    def __init__(self, n_classes: int = 2, n_iter: int = 25,
                 prior_strength: float = 2.0):
        if n_classes < 2:
            raise ValueError("n_classes must be >= 2")
        if n_iter < 1:
            raise ValueError("n_iter must be >= 1")
        self.n_classes = n_classes
        self.n_iter = n_iter
        self.prior_strength = prior_strength
        self.accuracies_: np.ndarray | None = None
        self.class_prior_: np.ndarray | None = None

    def _check_votes(self, votes: np.ndarray) -> np.ndarray:
        votes = np.asarray(votes, dtype=np.int64)
        if votes.ndim != 2:
            raise ValueError(f"votes must be (n, m), got shape {votes.shape}")
        if votes.max(initial=ABSTAIN) >= self.n_classes or votes.min(initial=0) < ABSTAIN:
            raise ValueError("votes must lie in {-1} U [0, n_classes)")
        return votes

    def _posterior(self, votes: np.ndarray, acc: np.ndarray,
                   prior: np.ndarray) -> np.ndarray:
        """P(y | votes) under conditional independence, in log space."""
        n, m = votes.shape
        k = self.n_classes
        log_post = np.tile(np.log(prior + 1e-12), (n, 1))
        wrong = (1.0 - acc) / (k - 1)
        for j in range(m):
            vj = votes[:, j]
            active = vj != ABSTAIN
            if not active.any():
                continue
            contrib = np.full((n, k), 0.0)
            # log P(vote_j | y): acc if vote == y else (1-acc)/(k-1)
            lp_match = np.log(acc[j] + 1e-12)
            lp_miss = np.log(wrong[j] + 1e-12)
            rows = np.flatnonzero(active)
            contrib[rows, :] = lp_miss
            contrib[rows, vj[rows]] = lp_match
            log_post += contrib
        log_post -= log_post.max(axis=1, keepdims=True)
        post = np.exp(log_post)
        return post / post.sum(axis=1, keepdims=True)

    def fit(
        self,
        votes: np.ndarray,
        init_accuracies: np.ndarray | None = None,
        init_prior: np.ndarray | None = None,
    ) -> "LabelModel":
        """Learn LF accuracies from an unlabeled vote matrix (n, m).

        ``init_accuracies``/``init_prior`` seed EM with estimates measured on
        a labeled development set when available (Snuba has one); a good
        initialization keeps EM from converging to a label-swapped or
        majority-collapsed solution on heavily imbalanced data.
        """
        votes = self._check_votes(votes)
        n, m = votes.shape
        k = self.n_classes
        if init_accuracies is not None:
            acc = np.clip(np.asarray(init_accuracies, dtype=np.float64), 0.05, 0.95)
            if acc.shape != (m,):
                raise ValueError(f"init_accuracies must have shape ({m},)")
        else:
            acc = np.full(m, 0.7)
        if init_prior is not None:
            prior = np.asarray(init_prior, dtype=np.float64)
            if prior.shape != (k,):
                raise ValueError(f"init_prior must have shape ({k},)")
            prior = prior / prior.sum()
        else:
            prior = np.full(k, 1.0 / k)
        self._anchor_acc = acc.copy()
        for _ in range(self.n_iter):
            post = self._posterior(votes, acc, prior)
            # M-step with pseudo-counts pulling each accuracy toward its
            # anchor (the dev-measured value when provided, else 0.7).
            new_acc = np.empty(m)
            for j in range(m):
                active = votes[:, j] != ABSTAIN
                if not active.any():
                    new_acc[j] = self._anchor_acc[j]
                    continue
                agree = post[active, votes[active, j]].sum()
                total = active.sum()
                new_acc[j] = (agree + self._anchor_acc[j] * self.prior_strength) / (
                    total + self.prior_strength
                )
            acc = np.clip(new_acc, 0.05, 0.95)
            prior = post.mean(axis=0)
            prior = prior / prior.sum()
        self.accuracies_ = acc
        self.class_prior_ = prior
        return self

    def predict_proba(self, votes: np.ndarray) -> np.ndarray:
        if self.accuracies_ is None:
            raise RuntimeError("label model must be fit first")
        votes = self._check_votes(votes)
        return self._posterior(votes, self.accuracies_, self.class_prior_)

    def predict(self, votes: np.ndarray) -> np.ndarray:
        return self.predict_proba(votes).argmax(axis=1)
