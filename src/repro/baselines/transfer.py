"""Transfer-learning baseline and the Table 2 cross-dataset study.

The paper compares fine-tuning a CNN pre-trained on ImageNet against
pre-training on the *other* defect datasets, finding ImageNet best
(Table 2).  Our ImageNet stand-in is the pretext texture corpus
(:mod:`repro.datasets.pretext`); cross-dataset pre-training uses the source
dataset's gold labels, exactly as the paper's Table 2 scenarios do.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.cnn_zoo import CNNClassifier, dataset_to_tensor
from repro.datasets.base import Dataset, stratified_split
from repro.datasets.pretext import PretextConfig, make_pretext_corpus
from repro.utils.rng import as_rng

__all__ = ["pretrain_on_pretext", "pretrain_on_dataset", "TransferLearningBaseline"]


def pretrain_on_pretext(
    arch: str = "vgg",
    input_shape: tuple[int, int] = (32, 32),
    width: int = 8,
    epochs: int = 20,
    per_class: int = 30,
    seed: int | np.random.Generator | None = 0,
) -> CNNClassifier:
    """Train a CNN on the texture corpus — the offline "ImageNet" backbone."""
    rng = as_rng(seed)
    corpus = make_pretext_corpus(
        PretextConfig(per_class=per_class, size=input_shape[0]), seed=rng
    )
    model = CNNClassifier(arch=arch, n_classes=corpus.n_classes,
                          input_shape=input_shape, width=width,
                          epochs=epochs, seed=rng)
    model.fit(dataset_to_tensor(corpus, input_shape), corpus.labels)
    return model


def pretrain_on_dataset(
    source: Dataset,
    arch: str = "vgg",
    input_shape: tuple[int, int] = (32, 32),
    width: int = 8,
    epochs: int = 20,
    seed: int | np.random.Generator | None = 0,
) -> CNNClassifier:
    """Train a CNN on a full source defect dataset (Table 2 scenarios)."""
    rng = as_rng(seed)
    model = CNNClassifier(arch=arch, n_classes=source.n_classes,
                          input_shape=input_shape, width=width,
                          epochs=epochs, seed=rng)
    model.fit(dataset_to_tensor(source, input_shape), source.labels)
    return model


class TransferLearningBaseline:
    """Fine-tune a pre-trained CNN on a target development set.

    The classification head is re-initialized for the target classes and the
    whole network is fine-tuned at a reduced learning rate.
    """

    def __init__(
        self,
        backbone: CNNClassifier,
        fine_tune_epochs: int = 25,
        fine_tune_lr: float = 3e-4,
        seed: int | np.random.Generator | None = 0,
    ):
        self.backbone = backbone
        self.fine_tune_epochs = fine_tune_epochs
        self.fine_tune_lr = fine_tune_lr
        self._rng = as_rng(seed)

    def fit(self, dev: Dataset) -> "TransferLearningBaseline":
        model = self.backbone
        model.reset_head(dev.n_classes, seed=self._rng)
        model.epochs = self.fine_tune_epochs
        model._opt.lr = self.fine_tune_lr
        labels = dev.labels
        can_split = len(dev) >= 10 and np.bincount(labels).min() >= 2
        if can_split:
            val, train = stratified_split(dev, max(2, len(dev) // 5),
                                          seed=self._rng)
            model.fit(
                dataset_to_tensor(train, model.input_shape), train.labels,
                dataset_to_tensor(val, model.input_shape), val.labels,
            )
        else:
            model.fit(dataset_to_tensor(dev, model.input_shape), labels)
        return self

    def predict(self, data: Dataset) -> np.ndarray:
        return self.backbone.predict(
            dataset_to_tensor(data, self.backbone.input_shape)
        )

    def predict_proba(self, data: Dataset) -> np.ndarray:
        return self.backbone.predict_proba(
            dataset_to_tensor(data, self.backbone.input_shape)
        )
