"""Self-learning baselines (Section 6.1): CNNs trained on the dev set only.

The paper trains VGG-19 / MobileNetV2 without pre-training on the
development set using cross validation and labels the remaining images.
When comparing against Inspector Gadget these baselines isolate *feature
generation*: CNN convolutional features vs. pattern similarities.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.cnn_zoo import CNNClassifier, dataset_to_tensor
from repro.datasets.base import Dataset, stratified_split
from repro.utils.rng import as_rng

__all__ = ["SelfLearningBaseline"]


class SelfLearningBaseline:
    """Train a CNN on the dev set (with an internal validation split) and
    use it to label everything else."""

    def __init__(
        self,
        arch: str = "vgg",
        input_shape: tuple[int, int] = (32, 32),
        width: int = 8,
        epochs: int = 30,
        seed: int | np.random.Generator | None = 0,
    ):
        self.arch = arch
        self.input_shape = input_shape
        self.width = width
        self.epochs = epochs
        self._rng = as_rng(seed)
        self.model: CNNClassifier | None = None

    def fit(self, dev: Dataset) -> "SelfLearningBaseline":
        self.model = CNNClassifier(
            arch=self.arch,
            n_classes=dev.n_classes,
            input_shape=self.input_shape,
            width=self.width,
            epochs=self.epochs,
            seed=self._rng,
        )
        labels = dev.labels
        # Hold out ~1/5 of the dev set for early stopping when it is big
        # enough to stratify; otherwise train on everything.
        can_split = len(dev) >= 10 and np.bincount(labels).min() >= 2
        if can_split:
            val, train = stratified_split(dev, max(2, len(dev) // 5),
                                          seed=self._rng)
            self.model.fit(
                dataset_to_tensor(train, self.input_shape), train.labels,
                dataset_to_tensor(val, self.input_shape), val.labels,
            )
        else:
            self.model.fit(dataset_to_tensor(dev, self.input_shape), labels)
        return self

    def predict(self, data: Dataset) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("baseline must be fit first")
        return self.model.predict(dataset_to_tensor(data, self.input_shape))

    def predict_proba(self, data: Dataset) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("baseline must be fit first")
        return self.model.predict_proba(dataset_to_tensor(data, self.input_shape))
