"""GOGGLES reimplementation [Das et al., SIGMOD 2020].

GOGGLES labels images *without* crowdsourcing: a pre-trained CNN supplies
semantic prototypes (feature vectors at the most-activated locations of its
feature maps); images are compared through a prototype affinity function and
clustered; a handful of labeled examples then name the clusters.  Because no
dev labels enter training, its accuracy is constant as the dev set grows —
the flat GOGGLES lines of Figure 9.

Our pre-trained backbone is the pretext-corpus CNN (see
:mod:`repro.baselines.transfer`), standing in for GOGGLES' VGG-16.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.clustering import kmeans
from repro.baselines.cnn_zoo import CNNClassifier
from repro.datasets.base import Dataset
from repro.utils.rng import as_rng

__all__ = ["GogglesConfig", "GogglesLabeler"]


def _assign_clusters(votes: np.ndarray) -> np.ndarray:
    """Greedy one-to-one cluster -> class mapping maximizing vote mass.

    With as many clusters as classes, a many-to-one mapping would silence a
    class entirely (and zero its F1); greedy unique assignment on the vote
    matrix prevents that degenerate collapse.
    """
    n_clusters, n_classes = votes.shape
    mapping = np.full(n_clusters, -1, dtype=np.int64)
    remaining_clusters = set(range(n_clusters))
    remaining_classes = set(range(n_classes))
    order = np.dstack(np.unravel_index(np.argsort(votes, axis=None)[::-1],
                                       votes.shape))[0]
    for cluster, cls in order:
        if cluster in remaining_clusters and cls in remaining_classes:
            mapping[cluster] = cls
            remaining_clusters.discard(int(cluster))
            remaining_classes.discard(int(cls))
    leftovers = sorted(remaining_classes)
    for cluster in sorted(remaining_clusters):
        mapping[cluster] = leftovers.pop(0) if leftovers else int(
            votes.sum(axis=0).argmax()
        )
    return mapping


@dataclass(frozen=True)
class GogglesConfig:
    """``n_prototypes`` per image; ``mapping_examples`` is how many labeled
    examples per class are used to name clusters (GOGGLES' small seed set)."""

    n_prototypes: int = 5
    mapping_examples: int = 4
    kmeans_restarts: int = 4

    def __post_init__(self) -> None:
        if self.n_prototypes < 1:
            raise ValueError("n_prototypes must be >= 1")
        if self.mapping_examples < 1:
            raise ValueError("mapping_examples must be >= 1")


class GogglesLabeler:
    """Affinity coding: prototypes -> affinity matrix -> clusters -> labels."""

    def __init__(
        self,
        backbone: CNNClassifier,
        config: GogglesConfig | None = None,
        seed: int | np.random.Generator | None = 0,
    ):
        self.backbone = backbone
        self.config = config or GogglesConfig()
        self._rng = as_rng(seed)

    # -- prototype extraction --------------------------------------------------

    def _prototypes(self, dataset: Dataset) -> np.ndarray:
        """Per-image prototype matrix of shape (n, k, C).

        For each image, find the ``k`` feature-map channels with the highest
        peak activation; at each such channel's argmax location, read the
        full cross-channel feature column as one prototype vector.
        """
        maps = self.backbone.feature_maps(dataset)  # (n, C, H, W)
        n, c, h, w = maps.shape
        k = min(self.config.n_prototypes, c)
        flat = maps.reshape(n, c, h * w)
        peak_val = flat.max(axis=2)  # (n, C)
        peak_pos = flat.argmax(axis=2)  # (n, C)
        protos = np.empty((n, k, c))
        for i in range(n):
            top_channels = np.argsort(peak_val[i])[::-1][:k]
            for slot, ch in enumerate(top_channels):
                pos = peak_pos[i, ch]
                y, x = divmod(int(pos), w)
                protos[i, slot] = maps[i, :, y, x]
        norms = np.linalg.norm(protos, axis=2, keepdims=True)
        return protos / np.maximum(norms, 1e-12)

    def _affinity(self, protos: np.ndarray, block: int = 64) -> np.ndarray:
        """Affinity[i, j] = max cosine similarity over prototype pairs."""
        n, k, c = protos.shape
        aff = np.empty((n, n))
        flat = protos.reshape(n * k, c)
        for start in range(0, n, block):
            stop = min(start + block, n)
            sims = flat[start * k : stop * k] @ flat.T  # (b*k, n*k)
            sims = sims.reshape(stop - start, k, n, k)
            aff[start:stop] = sims.max(axis=(1, 3))
        return aff

    # -- labeling ---------------------------------------------------------------

    def fit_predict(self, dataset: Dataset, dev: Dataset) -> np.ndarray:
        """Cluster ``dataset`` and name clusters with a few dev examples.

        ``dev`` must be a subset of ``dataset``'s population statistically —
        only ``mapping_examples`` labels per class are consumed.
        """
        cfg = self.config
        protos = self._prototypes(dataset)
        affinity = self._affinity(protos)
        n_clusters = dataset.n_classes
        assign, _, _ = kmeans(affinity, n_clusters, seed=self._rng,
                              n_init=cfg.kmeans_restarts)

        # Name clusters using a few labeled dev examples: classify each dev
        # image into its nearest cluster (via affinity to cluster members),
        # then give every cluster the majority class of its dev examples.
        dev_protos = self._prototypes(dev)
        n_dev = len(dev)
        labels = dev.labels
        rng = self._rng
        chosen: list[int] = []
        for c in np.unique(labels):
            members = np.flatnonzero(labels == c)
            take = min(cfg.mapping_examples, members.size)
            chosen.extend(rng.choice(members, size=take, replace=False))
        votes = np.zeros((n_clusters, dataset.n_classes))
        flat_all = protos.reshape(len(dataset) * protos.shape[1], -1)
        for idx in chosen:
            p = dev_protos[idx].reshape(-1, dev_protos.shape[2])
            sims = p @ flat_all.T
            sims = sims.reshape(p.shape[0], len(dataset), protos.shape[1])
            per_image = sims.max(axis=(0, 2))
            cluster = assign[int(per_image.argmax())]
            votes[cluster, labels[idx]] += 1
        return _assign_clusters(votes)[assign]
