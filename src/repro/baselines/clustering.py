"""K-means clustering (used by the GOGGLES baseline; no sklearn available)."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_rng

__all__ = ["kmeans"]


def _kmeans_pp_init(x: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread initial centers by squared distance."""
    n = x.shape[0]
    centers = np.empty((k, x.shape[1]))
    centers[0] = x[rng.integers(0, n)]
    d2 = ((x - centers[0]) ** 2).sum(axis=1)
    for i in range(1, k):
        total = d2.sum()
        if total <= 0:
            centers[i] = x[rng.integers(0, n)]
            continue
        probs = d2 / total
        centers[i] = x[rng.choice(n, p=probs)]
        d2 = np.minimum(d2, ((x - centers[i]) ** 2).sum(axis=1))
    return centers


def kmeans(
    x: np.ndarray,
    k: int,
    seed: int | np.random.Generator | None = 0,
    n_init: int = 4,
    max_iter: int = 100,
    tol: float = 1e-6,
) -> tuple[np.ndarray, np.ndarray, float]:
    """Lloyd's algorithm with k-means++ restarts.

    Returns ``(assignments, centers, inertia)`` of the best restart.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError(f"x must be 2-D, got shape {x.shape}")
    n = x.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    rng = as_rng(seed)
    best: tuple[np.ndarray, np.ndarray, float] | None = None
    for _ in range(n_init):
        centers = _kmeans_pp_init(x, k, rng)
        assign = np.zeros(n, dtype=np.int64)
        prev_inertia = np.inf
        for _ in range(max_iter):
            d2 = ((x[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
            assign = d2.argmin(axis=1)
            inertia = float(d2[np.arange(n), assign].sum())
            for c in range(k):
                members = x[assign == c]
                if members.size:
                    centers[c] = members.mean(axis=0)
                else:
                    # Re-seed empty clusters at the farthest point.
                    far = int(d2.min(axis=1).argmax())
                    centers[c] = x[far]
            if prev_inertia - inertia < tol:
                break
            prev_inertia = inertia
        if best is None or inertia < best[2]:
            best = (assign.copy(), centers.copy(), inertia)
    assert best is not None
    return best
