"""Snuba reimplementation [Varma & Ré, PVLDB 2018].

Snuba automates labeling-function construction: starting from primitives
(here, exactly Inspector Gadget's FGF similarities, as the paper does "to be
favorable to Snuba"), it iteratively

1. trains heuristic models on every primitive subset up to a size limit,
2. picks the heuristic that best balances accuracy (F1 on the labeled dev
   set) and diversity (low Jaccard overlap with already-covered examples),
3. equips it with an abstain band (examples with low confidence abstain),

and finally combines all heuristics' votes on unlabeled data with a
generative label model.  The iteration over all subsets is what makes its
runtime blow up with many patterns — the behaviour Section 6.2 observes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

import numpy as np

from repro.baselines.heuristics import DecisionStump, LogisticRegression
from repro.baselines.label_model import ABSTAIN, LabelModel
from repro.eval.metrics import f1_score

__all__ = ["SnubaConfig", "Snuba", "SnubaHeuristic"]


@dataclass(frozen=True)
class SnubaConfig:
    """``max_subset_size`` bounds the primitive subsets (Snuba's default 1);
    ``max_heuristics`` bounds committee size; ``n_beta`` is how many abstain
    thresholds are scanned; ``min_new_coverage`` stops the loop when a new
    heuristic labels too few previously-uncovered dev examples."""

    max_subset_size: int = 1
    max_heuristics: int = 12
    heuristic_model: str = "stump"  # or "logreg"
    n_beta: int = 10
    min_new_coverage: float = 0.02
    diversity_weight: float = 0.5

    def __post_init__(self) -> None:
        if self.max_subset_size < 1:
            raise ValueError("max_subset_size must be >= 1")
        if self.max_heuristics < 1:
            raise ValueError("max_heuristics must be >= 1")
        if self.heuristic_model not in ("stump", "logreg"):
            raise ValueError("heuristic_model must be 'stump' or 'logreg'")


@dataclass
class SnubaHeuristic:
    """A trained heuristic: model over a primitive subset plus abstain band.

    ``min_confidence`` = 1/K + beta: a vote is cast only when the winning
    class probability beats the uniform baseline by the abstain margin
    (for binary tasks this is the familiar 0.5 + beta band).
    """

    features: tuple[int, ...]
    model: object
    min_confidence: float

    def vote(self, x: np.ndarray) -> np.ndarray:
        """Class votes with -1 = abstain, given the full primitive matrix."""
        probs = self.model.predict_proba(x[:, self.features])
        conf = probs.max(axis=1)
        labels = probs.argmax(axis=1)
        out = np.where(conf >= self.min_confidence, labels, ABSTAIN)
        return out.astype(np.int64)


class Snuba:
    """The Snuba loop over a primitive matrix."""

    def __init__(self, config: SnubaConfig | None = None, n_classes: int = 2,
                 task: str = "binary"):
        self.config = config or SnubaConfig()
        self.n_classes = n_classes
        self.task = task
        self.heuristics: list[SnubaHeuristic] = []
        self.label_model: LabelModel | None = None

    # -- heuristic construction ----------------------------------------------

    def _make_model(self):
        if self.config.heuristic_model == "stump" and self.n_classes == 2:
            return DecisionStump()
        return LogisticRegression(max_iter=80)

    def _candidate_subsets(self, n_features: int) -> list[tuple[int, ...]]:
        subsets: list[tuple[int, ...]] = []
        for size in range(1, self.config.max_subset_size + 1):
            subsets.extend(combinations(range(n_features), size))
        return subsets

    def _best_beta(self, probs: np.ndarray, y: np.ndarray) -> tuple[float, float]:
        """Scan abstain margins; return (min_confidence, F1-on-covered).

        Margins are relative to the uniform baseline 1/K so multi-class
        heuristics (whose peak probabilities rarely reach 0.5) still vote.
        """
        baseline = 1.0 / self.n_classes
        best_conf, best_f1 = baseline, -1.0
        labels = probs.argmax(axis=1)
        conf = probs.max(axis=1)
        max_margin = (1.0 - baseline) * 0.9
        for beta in np.linspace(0.0, max_margin, self.config.n_beta):
            covered = conf >= baseline + beta
            if covered.sum() < 2:
                continue
            f1 = f1_score(y[covered], labels[covered], task=self.task)
            if f1 > best_f1:
                best_conf, best_f1 = float(baseline + beta), f1
        return best_conf, best_f1

    def fit(self, x_dev: np.ndarray, y_dev: np.ndarray) -> "Snuba":
        """Run the heuristic-generation loop on the labeled dev set."""
        x_dev = np.asarray(x_dev, dtype=np.float64)
        y_dev = np.asarray(y_dev, dtype=np.int64).reshape(-1)
        if x_dev.ndim != 2 or x_dev.shape[0] != y_dev.size:
            raise ValueError(f"bad shapes: x {x_dev.shape}, y {y_dev.shape}")
        cfg = self.config
        n, p = x_dev.shape
        covered = np.zeros(n, dtype=bool)
        self.heuristics = []
        subsets = self._candidate_subsets(p)
        for _ in range(cfg.max_heuristics):
            best: tuple[float, SnubaHeuristic, np.ndarray] | None = None
            for subset in subsets:
                model = self._make_model()
                model.fit(x_dev[:, subset], y_dev)
                probs = model.predict_proba(x_dev[:, subset])
                min_conf, f1 = self._best_beta(probs, y_dev)
                if f1 < 0:
                    continue
                heuristic = SnubaHeuristic(features=subset, model=model,
                                           min_confidence=min_conf)
                votes = heuristic.vote(x_dev)
                active = votes != ABSTAIN
                if not active.any():
                    continue
                overlap = (active & covered).sum() / max(active.sum(), 1)
                score = f1 - cfg.diversity_weight * overlap
                if best is None or score > best[0]:
                    best = (score, heuristic, active)
            if best is None:
                break
            _, heuristic, active = best
            new_coverage = (active & ~covered).sum() / n
            if self.heuristics and new_coverage < cfg.min_new_coverage:
                break
            self.heuristics.append(heuristic)
            covered |= active
            if covered.all():
                break
        if not self.heuristics:
            raise RuntimeError("Snuba failed to construct any heuristic")
        # Combine the heuristics with a generative model seeded by their
        # dev-measured accuracies and the dev class prior (Snuba has the
        # labeled dev set available, so there is no reason to start EM blind).
        votes_dev = self.vote_matrix(x_dev)
        accuracies = np.empty(votes_dev.shape[1])
        for j in range(votes_dev.shape[1]):
            active = votes_dev[:, j] != ABSTAIN
            if active.any():
                accuracies[j] = float(
                    (votes_dev[active, j] == y_dev[active]).mean()
                )
            else:
                accuracies[j] = 0.5
        prior = np.bincount(y_dev, minlength=self.n_classes).astype(np.float64)
        prior = np.maximum(prior, 1.0)
        self.label_model = LabelModel(n_classes=self.n_classes,
                                      prior_strength=10.0)
        self.label_model.fit(votes_dev, init_accuracies=accuracies,
                             init_prior=prior / prior.sum())
        return self

    # -- inference -----------------------------------------------------------

    def vote_matrix(self, x: np.ndarray) -> np.ndarray:
        if not self.heuristics:
            raise RuntimeError("Snuba must be fit first")
        return np.stack([h.vote(x) for h in self.heuristics], axis=1)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        if self.label_model is None:
            raise RuntimeError("Snuba must be fit first")
        return self.label_model.predict_proba(self.vote_matrix(x))

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.predict_proba(x).argmax(axis=1)
