"""Scaled-down CNN architectures standing in for VGG-19 / MobileNetV2 / ResNet-50.

The paper uses these as generic CNN feature learners: a heavy deep-3x3-stack
model (VGG-19), a light depthwise-separable model (MobileNetV2), and a
residual model (ResNet-50, as the NEU end model).  Each builder keeps the
architecture's defining idea at a size trainable on CPU with our numpy
substrate.  ``CNNClassifier`` wraps training (mini-batch Adam with early
stopping), prediction, and feature extraction (for GOGGLES prototypes and
transfer learning).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.imaging.ops import resize
from repro.nn.layers import (
    Conv2d,
    Dense,
    Flatten,
    GlobalAvgPool2d,
    Layer,
    MaxPool2d,
    ReLU,
)
from repro.nn.losses import BinaryCrossEntropyWithLogits, SoftmaxCrossEntropy, sigmoid, softmax
from repro.nn.network import Sequential
from repro.nn.optim import Adam
from repro.utils.rng import as_rng

__all__ = [
    "preprocess_for_cnn",
    "dataset_to_tensor",
    "build_vgg",
    "build_mobilenet",
    "build_resnet",
    "ResidualBlock",
    "CNNClassifier",
]


def preprocess_for_cnn(
    image: np.ndarray,
    target: tuple[int, int] = (32, 32),
    max_aspect: float = 3.0,
) -> np.ndarray:
    """Make an industrial image square-ish, then resize to ``target``.

    The Product images are extremely long rectangles; the paper splits each
    image in half and stacks the halves "to make them more square-like,
    which is advantageous for CNNs".  We repeat the split until the aspect
    ratio falls under ``max_aspect``.
    """
    out = image
    for _ in range(6):
        h, w = out.shape
        if w / h <= max_aspect or w < 4:
            break
        half = w // 2
        out = np.vstack([out[:, :half], out[:, half : 2 * half]])
    return resize(out, target)


def dataset_to_tensor(
    dataset: Dataset | list[np.ndarray],
    target: tuple[int, int] = (32, 32),
) -> np.ndarray:
    """Stack preprocessed images into an (N, 1, H, W) tensor."""
    images = dataset.images if isinstance(dataset, Dataset) else dataset
    arrays = []
    for item in images:
        img = item.image if hasattr(item, "image") else item
        arrays.append(preprocess_for_cnn(img, target))
    return np.stack(arrays)[:, None, :, :]


class ResidualBlock(Layer):
    """conv-relu-conv + identity (1x1 projection when channels change)."""

    def __init__(self, in_channels: int, out_channels: int,
                 rng: int | np.random.Generator | None = None):
        rng = as_rng(rng)
        self.conv1 = Conv2d(in_channels, out_channels, 3, padding=1, rng=rng)
        self.relu1 = ReLU()
        self.conv2 = Conv2d(out_channels, out_channels, 3, padding=1, rng=rng)
        self.project = (
            Conv2d(in_channels, out_channels, 1, padding=0, rng=rng)
            if in_channels != out_channels
            else None
        )
        self.relu_out = ReLU()

    def forward(self, x: np.ndarray) -> np.ndarray:
        branch = self.conv2.forward(self.relu1.forward(self.conv1.forward(x)))
        skip = self.project.forward(x) if self.project is not None else x
        return self.relu_out.forward(branch + skip)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        g = self.relu_out.backward(grad_out)
        g_branch = self.conv1.backward(
            self.relu1.backward(self.conv2.backward(g))
        )
        g_skip = self.project.backward(g) if self.project is not None else g
        return g_branch + g_skip

    def _children(self) -> list[Layer]:
        layers = [self.conv1, self.relu1, self.conv2, self.relu_out]
        if self.project is not None:
            layers.append(self.project)
        return layers

    def params(self) -> list[np.ndarray]:
        return [p for c in self._children() for p in c.params()]

    def grads(self) -> list[np.ndarray]:
        return [g for c in self._children() for g in c.grads()]

    def set_training(self, mode: bool) -> None:
        self.training = mode
        for c in self._children():
            c.set_training(mode)


def build_vgg(n_classes: int, width: int = 8,
              rng: int | np.random.Generator | None = None,
              input_shape: tuple[int, int] = (32, 32)) -> Sequential:
    """VGG-style: stacked 3x3 convs, then a *fully connected* head.

    The FC head (not global pooling) is what lets VGG exploit defects that
    appear at fixed positions — the paper's explanation for VGG-19 winning
    on Product (stamping) while the GAP-based MobileNetV2 never does.
    """
    rng = as_rng(rng)
    out_dim = 1 if n_classes == 2 else n_classes
    fh, fw = input_shape[0] // 8, input_shape[1] // 8
    if fh < 1 or fw < 1:
        raise ValueError(f"input_shape {input_shape} too small for 3 pooling stages")
    return Sequential(
        Conv2d(1, width, 3, padding=1, rng=rng), ReLU(),
        Conv2d(width, width, 3, padding=1, rng=rng), ReLU(),
        MaxPool2d(2),
        Conv2d(width, 2 * width, 3, padding=1, rng=rng), ReLU(),
        Conv2d(2 * width, 2 * width, 3, padding=1, rng=rng), ReLU(),
        MaxPool2d(2),
        Conv2d(2 * width, 4 * width, 3, padding=1, rng=rng), ReLU(),
        MaxPool2d(2),
        Flatten(),
        Dense(4 * width * fh * fw, 8 * width, rng=rng), ReLU(),
        Dense(8 * width, out_dim, rng=rng),
    )


def build_mobilenet(n_classes: int, width: int = 8,
                    rng: int | np.random.Generator | None = None,
                    input_shape: tuple[int, int] = (32, 32)) -> Sequential:
    """MobileNet-style: depthwise-separable convolutions, GAP head.

    The global-average-pooled head is faithful to MobileNetV2 — and is why
    this baseline cannot exploit fixed-position defects (Section 6.2).
    """
    rng = as_rng(rng)
    out_dim = 1 if n_classes == 2 else n_classes

    def separable(cin: int, cout: int) -> list[Layer]:
        return [
            Conv2d(cin, cin, 3, padding=1, groups=cin, rng=rng), ReLU(),
            Conv2d(cin, cout, 1, padding=0, rng=rng), ReLU(),
        ]

    return Sequential(
        Conv2d(1, width, 3, padding=1, rng=rng), ReLU(),
        *separable(width, 2 * width),
        MaxPool2d(2),
        *separable(2 * width, 2 * width),
        MaxPool2d(2),
        *separable(2 * width, 4 * width),
        MaxPool2d(2),
        GlobalAvgPool2d(),
        Dense(4 * width, out_dim, rng=rng),
    )


def build_resnet(n_classes: int, width: int = 8,
                 rng: int | np.random.Generator | None = None,
                 input_shape: tuple[int, int] = (32, 32)) -> Sequential:
    """ResNet-style: residual blocks with pooling between stages, GAP head."""
    rng = as_rng(rng)
    out_dim = 1 if n_classes == 2 else n_classes
    return Sequential(
        Conv2d(1, width, 3, padding=1, rng=rng), ReLU(),
        ResidualBlock(width, width, rng=rng),
        MaxPool2d(2),
        ResidualBlock(width, 2 * width, rng=rng),
        MaxPool2d(2),
        ResidualBlock(2 * width, 4 * width, rng=rng),
        MaxPool2d(2),
        GlobalAvgPool2d(),
        Dense(4 * width, out_dim, rng=rng),
    )


_BUILDERS = {"vgg": build_vgg, "mobilenet": build_mobilenet, "resnet": build_resnet}


class CNNClassifier:
    """Mini-batch Adam training around a CNN from the zoo.

    ``input_shape`` is the (H, W) every image is preprocessed to.  Early
    stopping tracks validation loss when a validation split is given.
    """

    def __init__(
        self,
        arch: str = "vgg",
        n_classes: int = 2,
        input_shape: tuple[int, int] = (32, 32),
        width: int = 8,
        epochs: int = 30,
        batch_size: int = 16,
        lr: float = 1e-3,
        patience: int = 8,
        balanced: bool = True,
        seed: int | np.random.Generator | None = 0,
    ):
        if arch not in _BUILDERS:
            raise ValueError(f"arch must be one of {sorted(_BUILDERS)}, got {arch!r}")
        if epochs < 1 or batch_size < 1:
            raise ValueError("epochs and batch_size must be positive")
        self.arch = arch
        self.n_classes = n_classes
        self.input_shape = input_shape
        self.width = width
        self.epochs = epochs
        self.batch_size = batch_size
        self.patience = patience
        self.balanced = balanced
        self._rng = as_rng(seed)
        self.network = _BUILDERS[arch](n_classes, width=width, rng=self._rng,
                                       input_shape=input_shape)
        self._loss = (BinaryCrossEntropyWithLogits() if n_classes == 2
                      else SoftmaxCrossEntropy())
        self._opt = Adam(self.network.params(), self.network.grads(), lr=lr)
        self.history: list[float] = []

    def _set_class_weights(self, y: np.ndarray) -> None:
        """Inverse-frequency class weights so rare defects still train.

        Industrial datasets are heavily imbalanced; an unweighted CNN on a
        tiny dev set collapses to the majority class.  The paper gives its
        baselines every favorable treatment, so we do too.
        """
        if not self.balanced:
            return
        counts = np.bincount(y.astype(np.int64), minlength=self.n_classes)
        counts = np.maximum(counts, 1)
        weights = counts.sum() / (self.n_classes * counts)
        self._loss.class_weight = weights

    # -- data plumbing -------------------------------------------------------

    def _to_tensor(self, data) -> np.ndarray:
        if isinstance(data, np.ndarray) and data.ndim == 4:
            return data
        return dataset_to_tensor(data, self.input_shape)

    def _target(self, y: np.ndarray):
        y = np.asarray(y, dtype=np.int64).reshape(-1)
        return y.astype(np.float64) if self.n_classes == 2 else y

    # -- training ------------------------------------------------------------

    def fit(self, data, y: np.ndarray, val_data=None, y_val=None) -> "CNNClassifier":
        x = self._to_tensor(data)
        y_t = self._target(y)
        self._set_class_weights(np.asarray(y).reshape(-1))
        x_val = self._to_tensor(val_data) if val_data is not None else None
        yv_t = self._target(y_val) if y_val is not None else None
        n = x.shape[0]
        best_val = np.inf
        best_state: list[np.ndarray] | None = None
        stall = 0
        self.network.set_training(True)
        for _ in range(self.epochs):
            order = self._rng.permutation(n)
            epoch_loss = 0.0
            n_batches = 0
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                self.network.zero_grad()
                logits = self.network.forward(x[idx])
                loss, grad = self._loss(logits, y_t[idx])
                self.network.backward(grad)
                self._opt.step()
                epoch_loss += loss
                n_batches += 1
            self.history.append(epoch_loss / max(n_batches, 1))
            if x_val is not None:
                val_loss = self.evaluate_loss(x_val, yv_t)
                if val_loss < best_val - 1e-9:
                    best_val = val_loss
                    best_state = self.network.state_copy()
                    stall = 0
                else:
                    stall += 1
                    if stall >= self.patience:
                        break
        if best_state is not None:
            self.network.load_state(best_state)
        self.network.set_training(False)
        return self

    def evaluate_loss(self, x: np.ndarray, y_t: np.ndarray) -> float:
        self.network.set_training(False)
        logits = self.network.forward(x)
        loss, _ = self._loss(logits, y_t)
        self.network.set_training(True)
        return loss

    # -- inference -----------------------------------------------------------

    def predict_proba(self, data) -> np.ndarray:
        x = self._to_tensor(data)
        self.network.set_training(False)
        logits = self.network.forward(x)
        if self.n_classes == 2:
            p1 = sigmoid(logits.reshape(-1))
            return np.stack([1 - p1, p1], axis=1)
        return softmax(logits)

    def predict(self, data) -> np.ndarray:
        return self.predict_proba(data).argmax(axis=1)

    def feature_maps(self, data) -> np.ndarray:
        """Activations before global pooling, shape (N, C, H', W')."""
        x = self._to_tensor(data)
        self.network.set_training(False)
        out = x
        for layer in self.network.layers:
            if isinstance(layer, (GlobalAvgPool2d, Flatten, Dense)):
                break
            out = layer.forward(out)
        return out

    def embed(self, data) -> np.ndarray:
        """Pooled feature vector, shape (N, C): the penultimate representation."""
        maps = self.feature_maps(data)
        return maps.mean(axis=(2, 3))

    def reset_head(self, n_classes: int,
                   seed: int | np.random.Generator | None = None) -> None:
        """Replace the final classification layer (transfer-learning step)."""
        rng = as_rng(self._rng if seed is None else seed)
        head = self.network.layers[-1]
        if not isinstance(head, Dense):
            raise RuntimeError("expected final layer to be Dense")
        out_dim = 1 if n_classes == 2 else n_classes
        self.network.layers[-1] = Dense(head.weight.shape[0], out_dim, rng=rng)
        self.n_classes = n_classes
        self._loss = (BinaryCrossEntropyWithLogits() if n_classes == 2
                      else SoftmaxCrossEntropy())
        self._opt = Adam(self.network.params(), self.network.grads(),
                         lr=self._opt.lr)
