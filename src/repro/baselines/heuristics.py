"""Small heuristic models used by Snuba as labeling functions.

Snuba trains cheap models over subsets of primitives; the original uses
decision stumps and logistic regression.  Both are implemented here from
scratch (no sklearn in this environment).
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

__all__ = ["DecisionStump", "LogisticRegression"]


class DecisionStump:
    """One-feature threshold classifier chosen by balanced accuracy.

    Fits a threshold on a single input column (Snuba's subset size 1 case)
    or the best column of a multi-column input.  Probability outputs are a
    smooth logistic ramp around the threshold so that Snuba can derive
    abstain bands from confidence.
    """

    def __init__(self) -> None:
        self.feature_: int | None = None
        self.threshold_: float | None = None
        self.polarity_: int = 1
        self.sharpness_: float = 1.0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "DecisionStump":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64).reshape(-1)
        if x.ndim != 2 or x.shape[0] != y.size:
            raise ValueError(f"bad shapes: x {x.shape}, y {y.shape}")
        if set(np.unique(y)) - {0, 1}:
            raise ValueError("DecisionStump supports binary {0,1} labels")
        best = (-np.inf, 0, 0.0, 1)
        pos = y == 1
        neg = ~pos
        n_pos = max(pos.sum(), 1)
        n_neg = max(neg.sum(), 1)
        for j in range(x.shape[1]):
            col = x[:, j]
            candidates = np.unique(col)
            if candidates.size > 32:
                candidates = np.quantile(col, np.linspace(0.02, 0.98, 32))
            for t in candidates:
                above = col > t
                # Balanced accuracy for ">" polarity.
                bal = 0.5 * ((above & pos).sum() / n_pos
                             + (~above & neg).sum() / n_neg)
                if bal > best[0]:
                    best = (bal, j, float(t), 1)
                bal_inv = 1.0 - bal
                if bal_inv > best[0]:
                    best = (bal_inv, j, float(t), -1)
        _, self.feature_, self.threshold_, self.polarity_ = best
        spread = float(np.std(x[:, self.feature_])) or 1.0
        self.sharpness_ = 4.0 / spread
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        if self.feature_ is None:
            raise RuntimeError("stump must be fit first")
        col = np.asarray(x, dtype=np.float64)[:, self.feature_]
        z = self.polarity_ * self.sharpness_ * (col - self.threshold_)
        p1 = 1.0 / (1.0 + np.exp(-np.clip(z, -50, 50)))
        return np.stack([1 - p1, p1], axis=1)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return (self.predict_proba(x)[:, 1] > 0.5).astype(np.int64)


class LogisticRegression:
    """L2-regularized logistic regression trained with L-BFGS.

    Supports binary (sigmoid) and multi-class (softmax) targets.
    """

    def __init__(self, l2: float = 1e-3, max_iter: int = 200):
        if l2 < 0:
            raise ValueError("l2 must be >= 0")
        self.l2 = l2
        self.max_iter = max_iter
        self.coef_: np.ndarray | None = None  # (d, k) or (d,)
        self.intercept_: np.ndarray | None = None
        self.n_classes_: int = 2

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64).reshape(-1)
        if x.ndim != 2 or x.shape[0] != y.size:
            raise ValueError(f"bad shapes: x {x.shape}, y {y.shape}")
        self.n_classes_ = int(y.max()) + 1 if y.size else 2
        self.n_classes_ = max(self.n_classes_, 2)
        d = x.shape[1]
        if self.n_classes_ == 2:
            w0 = np.zeros(d + 1)

            def obj(w):
                z = x @ w[:d] + w[d]
                loss = np.mean(np.logaddexp(0.0, z) - y * z)
                p = 1.0 / (1.0 + np.exp(-np.clip(z, -50, 50)))
                g_z = (p - y) / y.size
                grad = np.concatenate([x.T @ g_z, [g_z.sum()]])
                loss += 0.5 * self.l2 * w[:d] @ w[:d]
                grad[:d] += self.l2 * w[:d]
                return loss, grad

            res = optimize.minimize(obj, w0, jac=True, method="L-BFGS-B",
                                    options={"maxiter": self.max_iter})
            self.coef_ = res.x[:d]
            self.intercept_ = np.array([res.x[d]])
        else:
            k = self.n_classes_
            w0 = np.zeros((d + 1) * k)
            onehot = np.eye(k)[y]

            def obj(wflat):
                w = wflat.reshape(d + 1, k)
                z = x @ w[:d] + w[d]
                z -= z.max(axis=1, keepdims=True)
                e = np.exp(z)
                p = e / e.sum(axis=1, keepdims=True)
                loss = -np.mean(np.log(p[np.arange(y.size), y] + 1e-12))
                g_z = (p - onehot) / y.size
                grad = np.vstack([x.T @ g_z, g_z.sum(axis=0)])
                loss += 0.5 * self.l2 * float((w[:d] ** 2).sum())
                grad[:d] += self.l2 * w[:d]
                return loss, grad.ravel()

            res = optimize.minimize(obj, w0, jac=True, method="L-BFGS-B",
                                    options={"maxiter": self.max_iter})
            w = res.x.reshape(d + 1, k)
            self.coef_ = w[:d]
            self.intercept_ = w[d]
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("model must be fit first")
        x = np.asarray(x, dtype=np.float64)
        if self.n_classes_ == 2:
            z = x @ self.coef_ + self.intercept_[0]
            p1 = 1.0 / (1.0 + np.exp(-np.clip(z, -50, 50)))
            return np.stack([1 - p1, p1], axis=1)
        z = x @ self.coef_ + self.intercept_
        z -= z.max(axis=1, keepdims=True)
        e = np.exp(z)
        return e / e.sum(axis=1, keepdims=True)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.predict_proba(x).argmax(axis=1)
