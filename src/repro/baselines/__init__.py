"""Baselines the paper compares against (Section 6.1).

* :mod:`repro.baselines.snuba` — Snuba [Varma & Ré 2018]: automatic labeling-
  function construction over primitives, combined by a generative model.
* :mod:`repro.baselines.goggles` — GOGGLES [Das et al. 2020]: affinity coding
  with a pre-trained feature extractor and clustering; uses no dev labels for
  training (only to name clusters), hence constant accuracy in Figure 9.
* :mod:`repro.baselines.self_learning` — CNNs (VGG-style heavy,
  MobileNetV2-style light) trained on the development set alone.
* :mod:`repro.baselines.transfer` — the same CNNs pre-trained on a pretext
  corpus (our ImageNet stand-in) or on another defect dataset (Table 2),
  then fine-tuned.
"""

from repro.baselines.cnn_zoo import (
    CNNClassifier,
    build_mobilenet,
    build_resnet,
    build_vgg,
    preprocess_for_cnn,
)
from repro.baselines.goggles import GogglesConfig, GogglesLabeler
from repro.baselines.heuristics import DecisionStump, LogisticRegression
from repro.baselines.label_model import LabelModel
from repro.baselines.self_learning import SelfLearningBaseline
from repro.baselines.snuba import Snuba, SnubaConfig
from repro.baselines.transfer import TransferLearningBaseline, pretrain_on_dataset

__all__ = [
    "CNNClassifier",
    "build_vgg",
    "build_mobilenet",
    "build_resnet",
    "preprocess_for_cnn",
    "GogglesConfig",
    "GogglesLabeler",
    "DecisionStump",
    "LogisticRegression",
    "LabelModel",
    "SelfLearningBaseline",
    "Snuba",
    "SnubaConfig",
    "TransferLearningBaseline",
    "pretrain_on_dataset",
]
