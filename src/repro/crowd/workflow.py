"""The crowdsourcing workflow: sampling, annotation, combining, review.

Implements Figure 4 of the paper: workers box defects in randomly sampled
images until enough defective images have been seen; overlapping boxes are
combined (averaged); outlier boxes go through peer review; the surviving
boxes are cropped into patterns; all annotated images form the development
set.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.crowd.peer_review import PeerReviewConfig, peer_review
from repro.crowd.workers import WorkerPool, WorkerProfile
from repro.datasets.base import Dataset, LabeledImage
from repro.imaging.boxes import BoundingBox, combine_boxes, group_overlapping
from repro.patterns import Pattern
from repro.utils.rng import as_rng

__all__ = ["WorkflowConfig", "CrowdResult", "CrowdsourcingWorkflow"]

# Patterns smaller than this on either side carry no texture information and
# make NCC degenerate; the workflow discards them.
_MIN_PATTERN_SIDE = 3


@dataclass(frozen=True)
class WorkflowConfig:
    """Workflow knobs; the Table 3 ablation toggles ``combine_overlapping``
    and ``use_peer_review``.

    ``target_defective`` stops sampling once this many defective images have
    been annotated ("identifying tens of defective images is sufficient");
    ``max_images`` optionally caps the annotation budget regardless.
    """

    n_workers: int = 3
    target_defective: int = 10
    max_images: int | None = None
    iou_threshold: float = 0.2
    combine_strategy: str = "average"
    combine_overlapping: bool = True
    use_peer_review: bool = True
    worker_profile: WorkerProfile = field(default_factory=WorkerProfile)
    review: PeerReviewConfig = field(default_factory=PeerReviewConfig)

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if self.target_defective < 1:
            raise ValueError("target_defective must be >= 1")
        if self.max_images is not None and self.max_images < 1:
            raise ValueError("max_images must be >= 1 when given")


@dataclass
class CrowdResult:
    """Outcome of one workflow run.

    ``dev_indices`` index into the source dataset; ``dev`` is the annotated
    development set (gold labels — the paper treats dev labels as reliable
    after review); ``patterns`` are the extracted defect crops.
    """

    dev_indices: list[int]
    dev: Dataset
    patterns: list[Pattern]
    n_raw_boxes: int
    n_combined: int
    n_outliers: int
    n_review_rejected: int


class CrowdsourcingWorkflow:
    """Runs the full annotate → combine → review → extract pipeline."""

    def __init__(
        self,
        config: WorkflowConfig | None = None,
        seed: int | np.random.Generator | None = 0,
    ):
        self.config = config or WorkflowConfig()
        self._rng = as_rng(seed)
        self._pool = WorkerPool(
            n_workers=self.config.n_workers,
            profile=self.config.worker_profile,
            seed=self._rng,
        )

    # -- box processing for one image ---------------------------------------

    def _process_image_boxes(
        self, item: LabeledImage, per_worker: list[list[BoundingBox]]
    ) -> tuple[list[BoundingBox], int, int, int]:
        """Combine/review one image's worker boxes.

        Returns (kept boxes, n_combined_groups, n_outliers, n_rejected).
        """
        cfg = self.config
        all_boxes = [b for boxes in per_worker for b in boxes]
        if not all_boxes:
            return [], 0, 0, 0
        if not cfg.combine_overlapping:
            # Ablation "No avg.": every raw worker box becomes a candidate.
            return all_boxes, 0, 0, 0
        groups = group_overlapping(all_boxes, cfg.iou_threshold)
        kept: list[BoundingBox] = []
        outliers: list[BoundingBox] = []
        n_combined = 0
        for group in groups:
            members = [all_boxes[i] for i in group]
            if len(members) >= 2:
                kept.append(combine_boxes(members, cfg.combine_strategy))
                n_combined += 1
            else:
                outliers.append(members[0])
        n_rejected = 0
        if cfg.use_peer_review and outliers:
            accepted = peer_review(outliers, item, self._pool, cfg.review)
            n_rejected = len(outliers) - len(accepted)
            kept.extend(accepted)
        else:
            kept.extend(outliers)
        return kept, n_combined, len(outliers), n_rejected

    def _extract_patterns(
        self, item: LabeledImage, index: int, boxes: list[BoundingBox]
    ) -> list[Pattern]:
        patterns = []
        label = item.label if item.label > 0 else 1
        for box in boxes:
            rows, cols = box.clip_to(item.shape).to_int_slices()
            crop = item.image[rows, cols]
            if min(crop.shape) < _MIN_PATTERN_SIDE:
                continue
            patterns.append(
                Pattern(array=crop.copy(), label=int(label),
                        provenance="crowd", source_image=index)
            )
        return patterns

    # -- main entry points ---------------------------------------------------

    def run(self, dataset: Dataset) -> CrowdResult:
        """Annotate randomly sampled images until the defective target is met."""
        cfg = self.config
        order = self._rng.permutation(len(dataset))
        chosen: list[int] = []
        n_defective = 0
        for idx in order:
            chosen.append(int(idx))
            if dataset[int(idx)].is_defective:
                n_defective += 1
            if n_defective >= cfg.target_defective:
                break
            if cfg.max_images is not None and len(chosen) >= cfg.max_images:
                break
        return self._annotate(dataset, chosen)

    def run_fixed(self, dataset: Dataset, n_images: int) -> CrowdResult:
        """Annotate exactly ``n_images`` randomly sampled images.

        Used by the dev-set-size sweeps (Figure 9), where the annotation
        budget is the controlled variable.
        """
        if not 0 < n_images <= len(dataset):
            raise ValueError(
                f"n_images must be in (0, {len(dataset)}], got {n_images}"
            )
        order = self._rng.permutation(len(dataset))[:n_images]
        return self._annotate(dataset, [int(i) for i in order])

    def _annotate(self, dataset: Dataset, indices: list[int]) -> CrowdResult:
        patterns: list[Pattern] = []
        n_raw = n_combined = n_outliers = n_rejected = 0
        for idx in indices:
            item = dataset[idx]
            per_worker = self._pool.annotate_image(item)
            n_raw += sum(len(b) for b in per_worker)
            kept, nc, no, nr = self._process_image_boxes(item, per_worker)
            n_combined += nc
            n_outliers += no
            n_rejected += nr
            patterns.extend(self._extract_patterns(item, idx, kept))
        dev = dataset.subset(sorted(indices), name=f"{dataset.name}/dev")
        return CrowdResult(
            dev_indices=sorted(indices),
            dev=dev,
            patterns=patterns,
            n_raw_boxes=n_raw,
            n_combined=n_combined,
            n_outliers=n_outliers,
            n_review_rejected=n_rejected,
        )
