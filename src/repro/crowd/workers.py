"""Simulated crowdworkers drawing defect bounding boxes.

A worker sees an image's true defect boxes (the generator's ground truth —
what a careful human would perceive) and reports noisy versions of them:
jittered position, biased size, occasional misses, and occasional spurious
boxes on defect-free regions.  Harder defects (lower contrast) are missed
more often, mirroring real annotation behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.base import LabeledImage
from repro.imaging.boxes import BoundingBox
from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.validation import check_positive, check_probability

__all__ = ["WorkerProfile", "WorkerPool"]


@dataclass(frozen=True)
class WorkerProfile:
    """Noise characteristics of one simulated crowdworker.

    ``jitter`` scales coordinate noise relative to the defect size;
    ``size_bias_sigma`` is the log-std of the multiplicative box-size error;
    ``miss_rate`` is the base probability of overlooking a defect (scaled up
    for low-contrast defects); ``spurious_rate`` is the per-image probability
    of drawing a box on a defect-free region.
    """

    jitter: float = 0.15
    size_bias_sigma: float = 0.2
    miss_rate: float = 0.1
    spurious_rate: float = 0.08
    review_accuracy: float = 0.85

    def __post_init__(self) -> None:
        check_positive("jitter", self.jitter, strict=False)
        check_positive("size_bias_sigma", self.size_bias_sigma, strict=False)
        check_probability("miss_rate", self.miss_rate)
        check_probability("spurious_rate", self.spurious_rate)
        check_probability("review_accuracy", self.review_accuracy)

    def annotate(
        self,
        item: LabeledImage,
        rng: np.random.Generator,
    ) -> list[BoundingBox]:
        """Return this worker's boxes for one image."""
        h, w = item.shape
        boxes: list[BoundingBox] = []
        for true_box in item.defect_boxes:
            # Low-contrast defects are missed more often: the effective miss
            # rate interpolates toward 1 as difficulty falls below ~0.3.
            visibility = min(1.0, item.difficulty / 0.3)
            effective_miss = self.miss_rate + (1.0 - visibility) * 0.5
            if rng.random() < effective_miss:
                continue
            dy = rng.normal(0.0, self.jitter * true_box.height)
            dx = rng.normal(0.0, self.jitter * true_box.width)
            sh = float(np.exp(rng.normal(0.0, self.size_bias_sigma)))
            sw = float(np.exp(rng.normal(0.0, self.size_bias_sigma)))
            new_h = max(2.0, true_box.height * sh)
            new_w = max(2.0, true_box.width * sw)
            cy, cx = true_box.center
            noisy = BoundingBox(
                y=cy + dy - new_h / 2.0,
                x=cx + dx - new_w / 2.0,
                height=new_h,
                width=new_w,
            ).clip_to((h, w))
            boxes.append(noisy)
        if rng.random() < self.spurious_rate:
            # A spurious box roughly the size of a typical defect, anywhere.
            sp_h = float(rng.uniform(3, max(4, h // 4)))
            sp_w = float(rng.uniform(3, max(4, w // 4)))
            sp = BoundingBox(
                y=rng.uniform(0, max(1, h - sp_h)),
                x=rng.uniform(0, max(1, w - sp_w)),
                height=sp_h,
                width=sp_w,
            ).clip_to((h, w))
            boxes.append(sp)
        return boxes


class WorkerPool:
    """A fixed roster of workers, each with an independent random stream."""

    def __init__(
        self,
        n_workers: int = 3,
        profile: WorkerProfile | None = None,
        seed: int | np.random.Generator | None = 0,
    ):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.profile = profile or WorkerProfile()
        self._rngs = spawn_rngs(as_rng(seed), n_workers)

    def __len__(self) -> int:
        return len(self._rngs)

    def annotate_image(self, item: LabeledImage) -> list[list[BoundingBox]]:
        """All workers annotate one image; returns per-worker box lists."""
        return [self.profile.annotate(item, rng) for rng in self._rngs]

    def review_votes(self, is_true_defect: bool) -> list[bool]:
        """Each worker votes whether an outlier box really contains a defect.

        A worker answers correctly with probability ``review_accuracy``.
        """
        acc = self.profile.review_accuracy
        votes = []
        for rng in self._rngs:
            correct = rng.random() < acc
            votes.append(is_true_defect if correct else not is_true_defect)
        return votes
