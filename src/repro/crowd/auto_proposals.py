"""Automated defect proposals (the paper's RPN remark, Section 3).

The paper notes the crowdsourcing workflow "can possibly be automated using
pre-trained region proposal networks", but that such RPNs need training data
that seldom exists for industrial defects.  This module provides the closest
training-data-free equivalent: a statistical anomaly proposer that flags
regions deviating from the image's own background statistics.  It can seed
or replace the crowd in deployments where even non-expert annotation is
unavailable — at the cost of more spurious patterns (which peer review or
the labeler must absorb).

Method: local mean/variance via box filters; a pixel is anomalous when its
local mean deviates from the global background by more than ``z_threshold``
robust standard deviations; anomalous pixels are grouped into connected
components, which become proposal boxes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro.datasets.base import Dataset, LabeledImage
from repro.imaging.boxes import BoundingBox
from repro.patterns import Pattern

__all__ = ["AutoProposalConfig", "propose_boxes", "auto_annotate"]

_MIN_PATTERN_SIDE = 3


@dataclass(frozen=True)
class AutoProposalConfig:
    """``window`` is the local-statistics scale (pixels); proposals smaller
    than ``min_area`` px or covering more than ``max_area_fraction`` of the
    image are discarded (tiny speckle / global lighting shifts)."""

    window: int = 5
    z_threshold: float = 3.0
    min_area: int = 4
    max_area_fraction: float = 0.25
    max_proposals: int = 5

    def __post_init__(self) -> None:
        if self.window < 2:
            raise ValueError("window must be >= 2")
        if self.z_threshold <= 0:
            raise ValueError("z_threshold must be positive")
        if not 0 < self.max_area_fraction <= 1:
            raise ValueError("max_area_fraction must be in (0, 1]")


def propose_boxes(
    image: np.ndarray, config: AutoProposalConfig | None = None
) -> list[BoundingBox]:
    """Anomalous-region proposal boxes for one image, strongest first."""
    config = config or AutoProposalConfig()
    img = np.asarray(image, dtype=np.float64)
    if img.ndim != 2:
        raise ValueError(f"expected 2-D image, got shape {img.shape}")
    local_mean = ndimage.uniform_filter(img, size=config.window)
    # Robust background statistics: median and MAD resist the defect's own
    # contribution to the estimate.
    background = np.median(local_mean)
    mad = np.median(np.abs(local_mean - background))
    sigma = max(1.4826 * mad, 1e-6)
    z = np.abs(local_mean - background) / sigma
    mask = z > config.z_threshold
    if not mask.any():
        return []
    labels, n_components = ndimage.label(mask)
    slices = ndimage.find_objects(labels)
    proposals: list[tuple[float, BoundingBox]] = []
    max_area = config.max_area_fraction * img.size
    for comp_idx, sl in enumerate(slices, start=1):
        if sl is None:
            continue
        rows, cols = sl
        h = rows.stop - rows.start
        w = cols.stop - cols.start
        area = h * w
        if area < config.min_area or area > max_area:
            continue
        strength = float(z[sl].max())
        proposals.append((
            strength,
            BoundingBox(y=float(rows.start), x=float(cols.start),
                        height=float(h), width=float(w)),
        ))
    proposals.sort(key=lambda item: item[0], reverse=True)
    return [box for _, box in proposals[: config.max_proposals]]


def auto_annotate(
    dataset: Dataset,
    indices: list[int] | None = None,
    config: AutoProposalConfig | None = None,
) -> list[Pattern]:
    """Extract patterns from automatic proposals over ``dataset``.

    ``indices`` restricts annotation to a subset (the usual annotation
    budget); by default every image is scanned.  Pattern labels use the
    image's gold label when positive, else 1 — like the crowd workflow, the
    proposer only claims "something is here", not which class.
    """
    config = config or AutoProposalConfig()
    if indices is None:
        indices = list(range(len(dataset)))
    patterns: list[Pattern] = []
    for idx in indices:
        item: LabeledImage = dataset[idx]
        for box in propose_boxes(item.image, config):
            rows, cols = box.clip_to(item.shape).to_int_slices()
            crop = item.image[rows, cols]
            if min(crop.shape) < _MIN_PATTERN_SIDE:
                continue
            label = item.label if item.label > 0 else 1
            patterns.append(Pattern(array=crop.copy(), label=int(label),
                                    provenance="crowd", source_image=idx))
    return patterns
