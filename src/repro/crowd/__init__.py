"""Simulated crowdsourcing workflow (Section 3 of the paper).

Workers mark defects with bounding boxes through a UI; this package replaces
the human side with a parametric noise model while keeping the system side —
sampling until enough defective images are found, combining overlapping
boxes, peer-reviewing outliers, and extracting patterns — exactly as the
paper describes.  The Table 3 ablation (no averaging / no peer review / full
workflow) toggles those stages through :class:`WorkflowConfig`.
"""

from repro.crowd.auto_proposals import (
    AutoProposalConfig,
    auto_annotate,
    propose_boxes,
)
from repro.crowd.peer_review import PeerReviewConfig, peer_review
from repro.crowd.workers import WorkerPool, WorkerProfile
from repro.crowd.workflow import (
    CrowdResult,
    CrowdsourcingWorkflow,
    WorkflowConfig,
)

__all__ = [
    "AutoProposalConfig",
    "auto_annotate",
    "propose_boxes",
    "WorkerProfile",
    "WorkerPool",
    "PeerReviewConfig",
    "peer_review",
    "WorkflowConfig",
    "CrowdsourcingWorkflow",
    "CrowdResult",
]
