"""Peer review of outlier bounding boxes.

Boxes that did not overlap with any other worker's box ("outliers") are
discussed by the crowd: each worker votes on whether the box really contains
a defect, and the box survives only with majority approval.  Ground truth
(whether the box overlaps a real defect) drives each worker's *probability*
of voting correctly — the vote itself stays noisy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.base import LabeledImage
from repro.imaging.boxes import BoundingBox
from repro.utils.validation import check_probability

__all__ = ["PeerReviewConfig", "peer_review"]


@dataclass(frozen=True)
class PeerReviewConfig:
    """``min_true_overlap`` is the overlap fraction (intersection over the
    outlier box's own area) above which a box is considered to truly contain
    a defect for voting purposes."""

    min_true_overlap: float = 0.25

    def __post_init__(self) -> None:
        check_probability("min_true_overlap", self.min_true_overlap)


def _covers_defect(box: BoundingBox, item: LabeledImage, threshold: float) -> bool:
    if not item.defect_boxes:
        return False
    best = max(box.intersection_area(t) for t in item.defect_boxes)
    return best / box.area >= threshold


def peer_review(
    outliers: list[BoundingBox],
    item: LabeledImage,
    pool,
    config: PeerReviewConfig | None = None,
) -> list[BoundingBox]:
    """Return the subset of ``outliers`` that survives majority vote.

    ``pool`` is a :class:`~repro.crowd.workers.WorkerPool`; its
    ``review_votes`` method supplies one noisy vote per worker.
    """
    config = config or PeerReviewConfig()
    accepted: list[BoundingBox] = []
    for box in outliers:
        truly_defective = _covers_defect(box, item, config.min_true_overlap)
        votes = pool.review_votes(truly_defective)
        if sum(votes) * 2 > len(votes):
            accepted.append(box)
    return accepted
