"""Spectral normalization (Miyato et al. 2018) for the RGAN discriminator.

The paper applies spectral normalization to the discriminator "to adjust the
training speed for better training stability".  We implement the standard
power-iteration estimate of the largest singular value and divide the weight
by it on every forward pass.  As in the reference implementation, the
backward pass treats the spectral norm as a constant (the dominant term),
which is the approximation used in practice.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Layer
from repro.utils.rng import as_rng

__all__ = ["SpectralNormDense"]


class SpectralNormDense(Layer):
    """Dense layer whose weight is divided by its largest singular value."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: int | np.random.Generator | None = None,
        power_iterations: int = 1,
    ):
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        if power_iterations < 1:
            raise ValueError("power_iterations must be >= 1")
        rng = as_rng(rng)
        scale = np.sqrt(2.0 / in_features)
        self.weight = rng.normal(0.0, scale, size=(in_features, out_features))
        self.bias = np.zeros(out_features)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self.power_iterations = power_iterations
        # Persistent left singular vector estimate, refined each forward.
        self._u = rng.normal(size=out_features)
        self._u /= np.linalg.norm(self._u) + 1e-12
        self._sigma: float = 1.0
        self._x: np.ndarray | None = None

    def _estimate_sigma(self) -> float:
        w = self.weight
        u = self._u
        for _ in range(self.power_iterations):
            v = w @ u
            v /= np.linalg.norm(v) + 1e-12
            u = w.T @ v
            u /= np.linalg.norm(u) + 1e-12
        self._u = u
        sigma = float(v @ (w @ u))
        return max(abs(sigma), 1e-12)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._sigma = self._estimate_sigma()
        self._x = x
        return x @ (self.weight / self._sigma) + self.bias

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        # Treat sigma as constant: grad wrt W is (x^T g) / sigma.
        self.grad_weight += (self._x.T @ grad_out) / self._sigma
        self.grad_bias += grad_out.sum(axis=0)
        return grad_out @ (self.weight / self._sigma).T

    def params(self) -> list[np.ndarray]:
        return [self.weight, self.bias]

    def grads(self) -> list[np.ndarray]:
        return [self.grad_weight, self.grad_bias]
