"""Sequential container with flattened-parameter access for L-BFGS."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Layer

__all__ = ["Sequential"]


class Sequential(Layer):
    """A linear stack of layers sharing one forward/backward interface.

    Besides composition, it exposes the whole parameter set as a single flat
    vector (:meth:`get_flat_params` / :meth:`set_flat_params`), which is what
    ``scipy.optimize`` expects when the paper's MLP labeler is trained with
    L-BFGS.
    """

    def __init__(self, *layers: Layer):
        self.layers = list(layers)

    def append(self, layer: Layer) -> None:
        self.layers.append(layer)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def params(self) -> list[np.ndarray]:
        return [p for layer in self.layers for p in layer.params()]

    def grads(self) -> list[np.ndarray]:
        return [g for layer in self.layers for g in layer.grads()]

    def set_training(self, mode: bool) -> None:
        self.training = mode
        for layer in self.layers:
            layer.set_training(mode)

    # -- flat-vector parameter access (for scipy optimizers) ----------------

    def num_params(self) -> int:
        return sum(p.size for p in self.params())

    def get_flat_params(self) -> np.ndarray:
        params = self.params()
        if not params:
            return np.empty(0)
        return np.concatenate([p.ravel() for p in params])

    def set_flat_params(self, flat: np.ndarray) -> None:
        expected = self.num_params()
        if flat.size != expected:
            raise ValueError(f"expected {expected} parameters, got {flat.size}")
        offset = 0
        for p in self.params():
            p[...] = flat[offset : offset + p.size].reshape(p.shape)
            offset += p.size

    def get_flat_grads(self) -> np.ndarray:
        grads = self.grads()
        if not grads:
            return np.empty(0)
        return np.concatenate([g.ravel() for g in grads])

    # -- state dict (for saving the best iterate during early stopping) -----

    def state_copy(self) -> list[np.ndarray]:
        return [p.copy() for p in self.params()]

    def load_state(self, state: list[np.ndarray]) -> None:
        params = self.params()
        if len(state) != len(params):
            raise ValueError("state does not match network structure")
        for p, s in zip(params, state):
            p[...] = s
