"""Minimal neural-network substrate (replaces PyTorch/TensorFlow).

Implements exactly what the paper's models need: dense and convolutional
layers with manual backpropagation, binary/softmax losses, SGD/Adam for the
GAN, an L-BFGS trainer (the paper trains its MLP labeler with L-BFGS), and
spectral normalization for the RGAN discriminator.

Array conventions: dense inputs are ``(batch, features)``; convolutional
inputs are ``(batch, channels, height, width)``.  All parameters are float64
for stable L-BFGS line searches.
"""

from repro.nn.layers import (
    AvgPool2d,
    BatchNorm,
    Conv2d,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Layer,
    LeakyReLU,
    MaxPool2d,
    ReLU,
    Sigmoid,
    Tanh,
)
from repro.nn.losses import (
    BinaryCrossEntropyWithLogits,
    SoftmaxCrossEntropy,
    rgan_discriminator_loss,
    rgan_generator_loss,
)
from repro.nn.network import Sequential
from repro.nn.optim import SGD, Adam, LBFGSTrainer
from repro.nn.spectral_norm import SpectralNormDense

__all__ = [
    "Layer",
    "Dense",
    "Conv2d",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "BatchNorm",
    "Dropout",
    "Flatten",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Sequential",
    "BinaryCrossEntropyWithLogits",
    "SoftmaxCrossEntropy",
    "rgan_discriminator_loss",
    "rgan_generator_loss",
    "SGD",
    "Adam",
    "LBFGSTrainer",
    "SpectralNormDense",
]
