"""Layers with explicit forward/backward passes.

Each layer caches whatever its backward pass needs during forward, writes
parameter gradients into preallocated arrays (``grads()``), and returns the
gradient with respect to its input from ``backward``.  Gradient correctness
is verified against central finite differences in the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_rng

__all__ = [
    "Layer",
    "Dense",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Dropout",
    "Flatten",
    "Conv2d",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "BatchNorm",
]


class Layer:
    """Base class: stateless layers only override ``forward``/``backward``."""

    training: bool = True

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def params(self) -> list[np.ndarray]:
        """Trainable parameter arrays (mutated in place by optimizers)."""
        return []

    def grads(self) -> list[np.ndarray]:
        """Gradient arrays aligned with :meth:`params`."""
        return []

    def set_training(self, mode: bool) -> None:
        self.training = mode

    def zero_grad(self) -> None:
        for g in self.grads():
            g.fill(0.0)


class Dense(Layer):
    """Fully connected layer ``y = x @ W + b`` with He/Xavier initialization."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: int | np.random.Generator | None = None,
        init: str = "he",
    ):
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        rng = as_rng(rng)
        if init == "he":
            scale = np.sqrt(2.0 / in_features)
        elif init == "xavier":
            scale = np.sqrt(1.0 / in_features)
        else:
            raise ValueError(f"unknown init scheme: {init!r}")
        self.weight = rng.normal(0.0, scale, size=(in_features, out_features))
        self.bias = np.zeros(out_features)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return x @ self.weight + self.bias

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self.grad_weight += self._x.T @ grad_out
        self.grad_bias += grad_out.sum(axis=0)
        return grad_out @ self.weight.T

    def params(self) -> list[np.ndarray]:
        return [self.weight, self.bias]

    def grads(self) -> list[np.ndarray]:
        return [self.grad_weight, self.grad_bias]


class ReLU(Layer):
    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return np.where(self._mask, grad_out, 0.0)


class LeakyReLU(Layer):
    def __init__(self, slope: float = 0.2):
        if slope < 0:
            raise ValueError(f"slope must be >= 0, got {slope}")
        self.slope = slope
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, self.slope * x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return np.where(self._mask, grad_out, self.slope * grad_out)


class Sigmoid(Layer):
    def __init__(self) -> None:
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        # Numerically stable split for positive/negative inputs: each branch
        # is evaluated only where its exponent cannot overflow.
        y = np.empty_like(x, dtype=np.float64)
        pos = x >= 0
        y[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ez = np.exp(x[~pos])
        y[~pos] = ez / (1.0 + ez)
        self._y = y
        return self._y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * self._y * (1.0 - self._y)


class Tanh(Layer):
    def __init__(self) -> None:
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._y = np.tanh(x)
        return self._y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * (1.0 - self._y**2)


class Dropout(Layer):
    """Inverted dropout: identity at evaluation time."""

    def __init__(self, p: float = 0.5, rng: int | np.random.Generator | None = None):
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = as_rng(rng)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask


class Flatten(Layer):
    """Collapse all non-batch dimensions: (N, ...) -> (N, prod(...))."""

    def __init__(self) -> None:
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out.reshape(self._shape)


def _im2col(x: np.ndarray, kh: int, kw: int, stride: int, pad: int) -> tuple[np.ndarray, int, int]:
    """Unfold (N, C, H, W) into columns (N, out_h, out_w, C*kh*kw)."""
    n, c, h, w = x.shape
    if pad > 0:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    out_h = (h + 2 * pad - kh) // stride + 1
    out_w = (w + 2 * pad - kw) // stride + 1
    strides = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(
            strides[0],
            strides[1],
            strides[2] * stride,
            strides[3] * stride,
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    # -> (N, out_h, out_w, C, kh, kw) -> columns
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n, out_h, out_w, c * kh * kw)
    return np.ascontiguousarray(cols), out_h, out_w


class Conv2d(Layer):
    """2-D convolution via im2col; input (N, C, H, W), 'same'-style padding."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        stride: int = 1,
        padding: int = 1,
        groups: int = 1,
        rng: int | np.random.Generator | None = None,
    ):
        if in_channels % groups or out_channels % groups:
            raise ValueError("in_channels and out_channels must be divisible by groups")
        if kernel_size <= 0 or stride <= 0 or padding < 0:
            raise ValueError("kernel_size/stride must be positive, padding non-negative")
        rng = as_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = groups
        fan_in = (in_channels // groups) * kernel_size * kernel_size
        scale = np.sqrt(2.0 / fan_in)
        self.weight = rng.normal(
            0.0, scale, size=(out_channels, in_channels // groups, kernel_size, kernel_size)
        )
        self.bias = np.zeros(out_channels)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"expected input (N, {self.in_channels}, H, W), got {x.shape}"
            )
        self._x_shape = x.shape
        n = x.shape[0]
        k = self.kernel_size
        g = self.groups
        cig = self.in_channels // g
        cog = self.out_channels // g
        outs = []
        self._cols = []
        for gi in range(g):
            xg = x[:, gi * cig : (gi + 1) * cig]
            cols, out_h, out_w = _im2col(xg, k, k, self.stride, self.padding)
            self._cols.append(cols)
            wg = self.weight[gi * cog : (gi + 1) * cog].reshape(cog, -1)
            out = cols @ wg.T  # (N, out_h, out_w, cog)
            outs.append(out)
        y = np.concatenate(outs, axis=-1)  # (N, out_h, out_w, C_out)
        y = y + self.bias
        self._out_hw = (out_h, out_w)
        return np.ascontiguousarray(y.transpose(0, 3, 1, 2))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        n, _, out_h, out_w = grad_out.shape
        k = self.kernel_size
        g = self.groups
        cig = self.in_channels // g
        cog = self.out_channels // g
        go = grad_out.transpose(0, 2, 3, 1)  # (N, out_h, out_w, C_out)
        self.grad_bias += go.sum(axis=(0, 1, 2))
        grad_x = np.zeros(self._x_shape)
        _, _, h, w = self._x_shape
        pad = self.padding
        padded_shape = (n, cig, h + 2 * pad, w + 2 * pad)
        for gi in range(g):
            gog = go[..., gi * cog : (gi + 1) * cog]  # (N, oh, ow, cog)
            cols = self._cols[gi]  # (N, oh, ow, cig*k*k)
            gw = np.einsum("nhwc,nhwk->ck", gog, cols)
            self.grad_weight[gi * cog : (gi + 1) * cog] += gw.reshape(cog, cig, k, k)
            wg = self.weight[gi * cog : (gi + 1) * cog].reshape(cog, -1)
            gcols = gog @ wg  # (N, oh, ow, cig*k*k)
            gcols = gcols.reshape(n, out_h, out_w, cig, k, k)
            # col2im: scatter-add windows back into the padded input.
            gx_pad = np.zeros(padded_shape)
            for ky in range(k):
                for kx in range(k):
                    gx_pad[
                        :,
                        :,
                        ky : ky + out_h * self.stride : self.stride,
                        kx : kx + out_w * self.stride : self.stride,
                    ] += gcols[:, :, :, :, ky, kx].transpose(0, 3, 1, 2)
            if pad > 0:
                gx = gx_pad[:, :, pad:-pad, pad:-pad]
            else:
                gx = gx_pad
            grad_x[:, gi * cig : (gi + 1) * cig] = gx
        return grad_x

    def params(self) -> list[np.ndarray]:
        return [self.weight, self.bias]

    def grads(self) -> list[np.ndarray]:
        return [self.grad_weight, self.grad_bias]


class MaxPool2d(Layer):
    """Non-overlapping max pooling (kernel == stride)."""

    def __init__(self, size: int = 2):
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        self.size = size
        self._argmax: np.ndarray | None = None
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        s = self.size
        oh, ow = h // s, w // s
        if oh == 0 or ow == 0:
            raise ValueError(f"input {x.shape} too small for pool size {s}")
        self._x_shape = x.shape
        trimmed = x[:, :, : oh * s, : ow * s]
        windows = trimmed.reshape(n, c, oh, s, ow, s).transpose(0, 1, 2, 4, 3, 5)
        flat = windows.reshape(n, c, oh, ow, s * s)
        self._argmax = flat.argmax(axis=-1)
        return flat.max(axis=-1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        n, c, oh, ow = grad_out.shape
        s = self.size
        grad_flat = np.zeros((n, c, oh, ow, s * s))
        idx = self._argmax
        ni, ci, yi, xi = np.ogrid[:n, :c, :oh, :ow]
        grad_flat[ni, ci, yi, xi, idx] = grad_out
        grad_win = grad_flat.reshape(n, c, oh, ow, s, s).transpose(0, 1, 2, 4, 3, 5)
        grad_x = np.zeros(self._x_shape)
        grad_x[:, :, : oh * s, : ow * s] = grad_win.reshape(n, c, oh * s, ow * s)
        return grad_x


class AvgPool2d(Layer):
    """Non-overlapping average pooling (kernel == stride)."""

    def __init__(self, size: int = 2):
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        self.size = size
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        s = self.size
        oh, ow = h // s, w // s
        if oh == 0 or ow == 0:
            raise ValueError(f"input {x.shape} too small for pool size {s}")
        self._x_shape = x.shape
        trimmed = x[:, :, : oh * s, : ow * s]
        return trimmed.reshape(n, c, oh, s, ow, s).mean(axis=(3, 5))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        s = self.size
        n, c, oh, ow = grad_out.shape
        grad_x = np.zeros(self._x_shape)
        spread = np.repeat(np.repeat(grad_out, s, axis=2), s, axis=3) / (s * s)
        grad_x[:, :, : oh * s, : ow * s] = spread
        return grad_x


class GlobalAvgPool2d(Layer):
    """Average over all spatial positions: (N, C, H, W) -> (N, C)."""

    def __init__(self) -> None:
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        n, c, h, w = self._x_shape
        return np.broadcast_to(
            grad_out[:, :, None, None], self._x_shape
        ) / (h * w)


class BatchNorm(Layer):
    """Batch normalization for dense (N, F) or conv (N, C, H, W) inputs.

    Maintains running statistics for evaluation mode.  The normalized axes
    are every axis except the feature/channel axis.
    """

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5):
        if num_features <= 0:
            raise ValueError("num_features must be positive")
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = np.ones(num_features)
        self.beta = np.zeros(num_features)
        self.grad_gamma = np.zeros(num_features)
        self.grad_beta = np.zeros(num_features)
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self._cache: tuple | None = None

    def _axes_and_shape(self, x: np.ndarray) -> tuple[tuple[int, ...], tuple[int, ...]]:
        if x.ndim == 2:
            return (0,), (1, self.num_features)
        if x.ndim == 4:
            return (0, 2, 3), (1, self.num_features, 1, 1)
        raise ValueError(f"BatchNorm expects 2-D or 4-D input, got {x.ndim}-D")

    def forward(self, x: np.ndarray) -> np.ndarray:
        axes, shape = self._axes_and_shape(x)
        if self.training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            self.running_mean = (1 - self.momentum) * self.running_mean + self.momentum * mean
            self.running_var = (1 - self.momentum) * self.running_var + self.momentum * var
        else:
            mean = self.running_mean
            var = self.running_var
        std = np.sqrt(var + self.eps)
        x_hat = (x - mean.reshape(shape)) / std.reshape(shape)
        self._cache = (x_hat, std, axes, shape)
        return self.gamma.reshape(shape) * x_hat + self.beta.reshape(shape)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        x_hat, std, axes, shape = self._cache
        m = grad_out.size / self.num_features
        self.grad_gamma += (grad_out * x_hat).sum(axis=axes)
        self.grad_beta += grad_out.sum(axis=axes)
        g = grad_out * self.gamma.reshape(shape)
        if self.training:
            # Full batch-norm backward through the batch statistics.
            gx_hat_sum = g.sum(axis=axes).reshape(shape)
            gx_hat_dot = (g * x_hat).sum(axis=axes).reshape(shape)
            return (g - gx_hat_sum / m - x_hat * gx_hat_dot / m) / std.reshape(shape)
        return g / std.reshape(shape)

    def params(self) -> list[np.ndarray]:
        return [self.gamma, self.beta]

    def grads(self) -> list[np.ndarray]:
        return [self.grad_gamma, self.grad_beta]
