"""Optimizers: SGD and Adam for iterative training, plus an L-BFGS trainer.

The paper trains its MLP labeler with L-BFGS ("which provides stable training
on small data") at learning rate 1e-5 with early stopping; the RGAN uses
per-step gradient optimizers.  ``LBFGSTrainer`` wraps
``scipy.optimize.minimize(method="L-BFGS-B")`` around a
:class:`~repro.nn.network.Sequential` and a loss, tracking the best iterate
on a validation split.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import optimize

from repro.nn.network import Sequential

__all__ = ["SGD", "Adam", "LBFGSTrainer", "TrainResult"]


class SGD:
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: list[np.ndarray], grads: list[np.ndarray],
                 lr: float = 0.01, momentum: float = 0.0):
        if lr <= 0:
            raise ValueError(f"lr must be > 0, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if len(params) != len(grads):
            raise ValueError("params and grads must be aligned")
        self.params = params
        self.grads = grads
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p) for p in params]

    def step(self) -> None:
        for p, g, v in zip(self.params, self.grads, self._velocity):
            if self.momentum > 0:
                v *= self.momentum
                v -= self.lr * g
                p += v
            else:
                p -= self.lr * g

    def zero_grad(self) -> None:
        for g in self.grads:
            g.fill(0.0)


class Adam:
    """Adam optimizer (Kingma & Ba), the standard choice for GAN training."""

    def __init__(self, params: list[np.ndarray], grads: list[np.ndarray],
                 lr: float = 1e-4, beta1: float = 0.5, beta2: float = 0.999,
                 eps: float = 1e-8):
        if lr <= 0:
            raise ValueError(f"lr must be > 0, got {lr}")
        if len(params) != len(grads):
            raise ValueError("params and grads must be aligned")
        self.params = params
        self.grads = grads
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = [np.zeros_like(p) for p in params]
        self._v = [np.zeros_like(p) for p in params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1**self._t
        bias2 = 1.0 - b2**self._t
        for p, g, m, v in zip(self.params, self.grads, self._m, self._v):
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * g * g
            p -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)

    def zero_grad(self) -> None:
        for g in self.grads:
            g.fill(0.0)


@dataclass
class TrainResult:
    """Outcome of an L-BFGS training run."""

    final_loss: float
    best_val_loss: float | None
    n_iterations: int
    stopped_early: bool
    history: list[float] = field(default_factory=list)


class _EarlyStop(Exception):
    pass


class LBFGSTrainer:
    """Full-batch L-BFGS training with validation-based early stopping.

    ``l2`` adds weight decay to the objective (standard for small-data MLPs).
    When a validation split is provided, the trainer snapshots the parameters
    at the lowest validation loss and restores them at the end — the paper's
    "early stopping in order to compare the accuracies of candidate models
    before they overfit".
    """

    def __init__(
        self,
        network: Sequential,
        loss_fn,
        max_iter: int = 200,
        l2: float = 1e-4,
        patience: int = 20,
        tol: float = 1e-9,
    ):
        if max_iter <= 0:
            raise ValueError(f"max_iter must be > 0, got {max_iter}")
        if l2 < 0:
            raise ValueError(f"l2 must be >= 0, got {l2}")
        self.network = network
        self.loss_fn = loss_fn
        self.max_iter = max_iter
        self.l2 = l2
        self.patience = patience
        self.tol = tol

    def _objective(self, flat: np.ndarray, x: np.ndarray, y: np.ndarray):
        net = self.network
        net.set_flat_params(flat)
        net.zero_grad()
        logits = net.forward(x)
        loss, grad_logits = self.loss_fn(logits, y)
        net.backward(grad_logits)
        grad = net.get_flat_grads()
        if self.l2 > 0:
            loss += 0.5 * self.l2 * float(flat @ flat)
            grad = grad + self.l2 * flat
        return loss, grad

    def evaluate_loss(self, x: np.ndarray, y: np.ndarray) -> float:
        """Data loss (without regularization) at the current parameters."""
        self.network.set_training(False)
        logits = self.network.forward(x)
        loss, _ = self.loss_fn(logits, y)
        self.network.set_training(True)
        return loss

    def train(
        self,
        x: np.ndarray,
        y: np.ndarray,
        x_val: np.ndarray | None = None,
        y_val: np.ndarray | None = None,
    ) -> TrainResult:
        net = self.network
        net.set_training(True)
        history: list[float] = []
        best_val = np.inf
        best_state: list[np.ndarray] | None = None
        stall = 0
        stopped_early = False

        def callback(flat: np.ndarray) -> None:
            nonlocal best_val, best_state, stall
            if x_val is None:
                return
            net.set_flat_params(flat)
            val_loss = self.evaluate_loss(x_val, y_val)
            history.append(val_loss)
            if val_loss < best_val - self.tol:
                best_val = val_loss
                best_state = net.state_copy()
                stall = 0
            else:
                stall += 1
                if stall >= self.patience:
                    raise _EarlyStop

        x0 = net.get_flat_params()
        n_iter = 0
        try:
            result = optimize.minimize(
                self._objective,
                x0,
                args=(x, y),
                jac=True,
                method="L-BFGS-B",
                callback=callback,
                options={"maxiter": self.max_iter, "ftol": 1e-12, "gtol": 1e-10},
            )
            net.set_flat_params(result.x)
            n_iter = int(result.nit)
        except _EarlyStop:
            stopped_early = True
            n_iter = len(history)

        if best_state is not None:
            # Keep whichever iterate generalized best.
            current_val = self.evaluate_loss(x_val, y_val)
            if best_val < current_val:
                net.load_state(best_state)
        final_loss = self.evaluate_loss(x, y)
        net.set_training(False)
        return TrainResult(
            final_loss=final_loss,
            best_val_loss=None if x_val is None else float(min(best_val, np.inf)),
            n_iterations=n_iter,
            stopped_early=stopped_early,
            history=history,
        )
