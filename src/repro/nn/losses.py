"""Loss functions, each returning ``(loss, grad_wrt_logits)``.

Includes the two Relativistic GAN objectives from Section 4.1 of the paper:

    max_D E[log sigma(D(x_r) - D(G(z)))]
    max_G E[log sigma(D(G(z)) - D(x_r))]

implemented as minimization losses over *paired* real/fake critic outputs.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "BinaryCrossEntropyWithLogits",
    "SoftmaxCrossEntropy",
    "gan_discriminator_loss",
    "gan_generator_loss",
    "rgan_discriminator_loss",
    "rgan_generator_loss",
    "sigmoid",
    "softmax",
    "log_sigmoid",
]


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(z, dtype=np.float64)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


def log_sigmoid(z: np.ndarray) -> np.ndarray:
    """log(sigmoid(z)) computed without overflow: -softplus(-z)."""
    return -np.logaddexp(0.0, -z)


def softmax(z: np.ndarray) -> np.ndarray:
    """Row-wise softmax with max-shift stabilization."""
    shifted = z - z.max(axis=1, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=1, keepdims=True)


class BinaryCrossEntropyWithLogits:
    """Mean BCE over logits ``z`` of shape (N,) or (N, 1) and targets in {0,1}.

    ``class_weight`` of shape (2,) re-weights examples by their class
    (normalized so the weights average to 1 within each batch); used by the
    CNN baselines to survive the heavy class imbalance of defect data.
    """

    def __init__(self, class_weight: np.ndarray | None = None):
        self.class_weight = (
            None if class_weight is None
            else np.asarray(class_weight, dtype=np.float64)
        )
        if self.class_weight is not None and self.class_weight.shape != (2,):
            raise ValueError("class_weight must have shape (2,)")

    def __call__(self, logits: np.ndarray, targets: np.ndarray) -> tuple[float, np.ndarray]:
        z = logits.reshape(-1)
        y = np.asarray(targets, dtype=np.float64).reshape(-1)
        if z.shape != y.shape:
            raise ValueError(f"logits {logits.shape} and targets {targets.shape} disagree")
        n = z.size
        if self.class_weight is not None:
            w = self.class_weight[y.astype(np.int64)]
            w = w / w.mean()
        else:
            w = np.ones(n)
        # loss = softplus(z) - y*z, averaged; stable via logaddexp.
        loss = float(np.mean(w * (np.logaddexp(0.0, z) - y * z)))
        grad = w * (sigmoid(z) - y) / n
        return loss, grad.reshape(logits.shape)


class SoftmaxCrossEntropy:
    """Mean cross entropy over logits (N, K) and integer class targets (N,).

    ``class_weight`` of shape (K,) re-weights examples by class, normalized
    per batch like in :class:`BinaryCrossEntropyWithLogits`.
    """

    def __init__(self, class_weight: np.ndarray | None = None):
        self.class_weight = (
            None if class_weight is None
            else np.asarray(class_weight, dtype=np.float64)
        )

    def __call__(self, logits: np.ndarray, targets: np.ndarray) -> tuple[float, np.ndarray]:
        if logits.ndim != 2:
            raise ValueError(f"logits must be 2-D, got shape {logits.shape}")
        y = np.asarray(targets)
        n, k = logits.shape
        if y.shape != (n,):
            raise ValueError(f"targets must have shape ({n},), got {y.shape}")
        if y.min() < 0 or y.max() >= k:
            raise ValueError(f"target classes must be in [0, {k}), got range "
                             f"[{y.min()}, {y.max()}]")
        if self.class_weight is not None:
            if self.class_weight.shape != (k,):
                raise ValueError(f"class_weight must have shape ({k},)")
            w = self.class_weight[y]
            w = w / w.mean()
        else:
            w = np.ones(n)
        probs = softmax(logits)
        loss = float(-np.mean(w * np.log(probs[np.arange(n), y] + 1e-12)))
        grad = probs
        grad[np.arange(n), y] -= 1.0
        return loss, grad * w[:, None] / n


def gan_discriminator_loss(
    d_real: np.ndarray, d_fake: np.ndarray
) -> tuple[float, np.ndarray, np.ndarray]:
    """Original GAN discriminator loss (Goodfellow et al. 2014).

    Minimizes ``-E[log sigma(D(x_r))] - E[log(1 - sigma(D(G(z))))]``.
    Returns ``(loss, grad_d_real, grad_d_fake)``.  Provided so the RGAN
    choice (Section 4.1) can be ablated against the original objective.
    """
    dr = d_real.reshape(-1)
    df = d_fake.reshape(-1)
    n_r, n_f = dr.size, df.size
    loss = float(-np.mean(log_sigmoid(dr)) - np.mean(log_sigmoid(-df)))
    grad_r = (sigmoid(dr) - 1.0) / n_r
    grad_f = sigmoid(df) / n_f
    return loss, grad_r.reshape(d_real.shape), grad_f.reshape(d_fake.shape)


def gan_generator_loss(d_fake: np.ndarray) -> tuple[float, np.ndarray]:
    """Non-saturating original GAN generator loss: ``-E[log sigma(D(G(z)))]``."""
    df = d_fake.reshape(-1)
    loss = float(-np.mean(log_sigmoid(df)))
    grad = (sigmoid(df) - 1.0) / df.size
    return loss, grad.reshape(d_fake.shape)


def rgan_discriminator_loss(
    d_real: np.ndarray, d_fake: np.ndarray
) -> tuple[float, np.ndarray, np.ndarray]:
    """RGAN discriminator loss and gradients w.r.t. both critic outputs.

    Minimizes ``-E[log sigma(D(x_r) - D(G(z)))]`` over paired samples.
    Returns ``(loss, grad_d_real, grad_d_fake)``.
    """
    dr = d_real.reshape(-1)
    df = d_fake.reshape(-1)
    if dr.shape != df.shape:
        raise ValueError("real and fake critic outputs must be paired (same shape)")
    n = dr.size
    diff = dr - df
    loss = float(-np.mean(log_sigmoid(diff)))
    # d/d diff of -log sigma(diff) = sigma(diff) - 1
    g = (sigmoid(diff) - 1.0) / n
    return loss, g.reshape(d_real.shape), (-g).reshape(d_fake.shape)


def rgan_generator_loss(
    d_real: np.ndarray, d_fake: np.ndarray
) -> tuple[float, np.ndarray]:
    """RGAN generator loss and gradient w.r.t. the fake critic outputs.

    Minimizes ``-E[log sigma(D(G(z)) - D(x_r))]``; the real critic outputs
    are treated as constants (the generator cannot influence them).
    """
    dr = d_real.reshape(-1)
    df = d_fake.reshape(-1)
    if dr.shape != df.shape:
        raise ValueError("real and fake critic outputs must be paired (same shape)")
    n = dr.size
    diff = df - dr
    loss = float(-np.mean(log_sigmoid(diff)))
    g = (sigmoid(diff) - 1.0) / n
    return loss, g.reshape(d_fake.shape)
