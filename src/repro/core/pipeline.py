"""The Inspector Gadget pipeline: fit on an image pool, emit weak labels."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.augment.augmenter import PatternAugmenter
from repro.core.config import InspectorGadgetConfig
from repro.crowd.workflow import CrowdResult, CrowdsourcingWorkflow
from repro.datasets.base import Dataset
from repro.features.generator import FeatureGenerator
from repro.labeler.mlp import MLPLabeler
from repro.labeler.tuning import TuningResult, tune_labeler
from repro.labeler.weak_labels import WeakLabels
from repro.utils.rng import as_rng

__all__ = ["InspectorGadget", "FitReport"]


@dataclass
class FitReport:
    """What happened during :meth:`InspectorGadget.fit`."""

    dev_size: int
    dev_defective: int
    n_crowd_patterns: int
    n_total_patterns: int
    chosen_architecture: tuple[int, ...]
    dev_cv_f1: float | None


class InspectorGadget:
    """End-to-end weak labeling system (Figure 3).

    Typical use::

        ig = InspectorGadget(config)
        report = ig.fit(dataset)        # crowdsource + augment + train labeler
        weak = ig.predict(unlabeled)    # WeakLabels for new images

    After fitting, only the feature generator (patterns) and labeler are
    needed for labeling — matching the components highlighted in the paper's
    architecture figure.
    """

    def __init__(self, config: InspectorGadgetConfig | None = None):
        self.config = config or InspectorGadgetConfig()
        self._rng = as_rng(self.config.seed)
        self.crowd_result: CrowdResult | None = None
        self.feature_generator: FeatureGenerator | None = None
        self.labeler: MLPLabeler | None = None
        self.tuning: TuningResult | None = None
        self._n_classes: int | None = None
        self._task: str | None = None

    # -- fitting -------------------------------------------------------------

    def fit(self, dataset: Dataset, dev_budget: int | None = None) -> FitReport:
        """Run the full pipeline on ``dataset``.

        ``dev_budget`` switches the crowd workflow from "annotate until the
        defective target is met" to "annotate exactly this many images"
        (the controlled variable in Figure 9's sweeps).
        """
        workflow = CrowdsourcingWorkflow(self.config.workflow, seed=self._rng)
        if dev_budget is None:
            crowd = workflow.run(dataset)
        else:
            crowd = workflow.run_fixed(dataset, dev_budget)
        if not crowd.patterns:
            raise RuntimeError(
                "crowdsourcing produced no patterns; increase the annotation "
                "budget or check worker noise settings"
            )
        return self.fit_from_crowd(crowd, task=dataset.task,
                                   n_classes=dataset.n_classes)

    def fit_from_crowd(
        self, crowd: CrowdResult, task: str, n_classes: int
    ) -> FitReport:
        """Fit augmentation, features and labeler from a finished crowd run.

        Split out so ablation experiments can reuse one crowd result across
        several augmentation/labeler settings without re-annotating.
        """
        self.crowd_result = crowd
        self._task = task
        self._n_classes = n_classes

        augmenter = PatternAugmenter(self.config.augment, self.config.matcher,
                                     seed=self._rng, n_jobs=self.config.n_jobs)
        patterns = augmenter.augment(crowd.patterns, crowd.dev)

        self.feature_generator = FeatureGenerator(
            patterns, self.config.matcher, n_jobs=self.config.n_jobs
        )
        dev_features = self.feature_generator.transform(crowd.dev)
        dev_labels = crowd.dev.labels

        if self.config.tune:
            self.tuning = tune_labeler(
                dev_features.values,
                dev_labels,
                n_classes=n_classes,
                task=task,
                seed=self._rng,
                max_layers=self.config.tune_max_layers,
                min_per_class=self.config.tune_min_per_class,
                max_iter=self.config.labeler_max_iter,
            )
            self.labeler = self.tuning.labeler
            chosen = self.tuning.best_hidden
            cv_f1 = self.tuning.best_score
        else:
            self.labeler = MLPLabeler(
                input_dim=dev_features.values.shape[1],
                hidden=self.config.default_hidden,
                n_classes=n_classes,
                seed=self._rng,
                max_iter=self.config.labeler_max_iter,
            )
            self.labeler.fit(dev_features.values, dev_labels)
            chosen = self.config.default_hidden
            cv_f1 = None

        return FitReport(
            dev_size=len(crowd.dev),
            dev_defective=crowd.dev.n_defective,
            n_crowd_patterns=len(crowd.patterns),
            n_total_patterns=len(patterns),
            chosen_architecture=chosen,
            dev_cv_f1=cv_f1,
        )

    # -- inference -----------------------------------------------------------

    def _require_fitted(self) -> None:
        if self.feature_generator is None or self.labeler is None:
            raise RuntimeError("InspectorGadget must be fit before predicting")

    def predict(self, data: Dataset | list[np.ndarray]) -> WeakLabels:
        """Weak labels for a dataset or a list of raw images."""
        self._require_fitted()
        if isinstance(data, Dataset):
            features = self.feature_generator.transform(data)
        else:
            features = self.feature_generator.transform_images(data)
        probs = self.labeler.predict_proba(features.values)
        return WeakLabels(probs=probs)

    def predict_features(self, features: np.ndarray) -> WeakLabels:
        """Weak labels from precomputed FGF features (sweep fast path)."""
        self._require_fitted()
        return WeakLabels(probs=self.labeler.predict_proba(features))
