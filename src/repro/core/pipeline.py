"""The Inspector Gadget pipeline: fit on an image pool, emit weak labels.

``fit`` drives the staged pipeline of :mod:`repro.core.stages` —
crowd → augment → features → labeler, mirroring Figure 3 — through a
:class:`PipelineRunner`.  With ``config.cache_dir`` set, each stage's output
is fingerprinted and persisted, so repeated fits (ablation sweeps, warm
restarts) reuse every stage whose configuration and upstream inputs are
unchanged; ``last_run`` records which stages executed vs loaded.

A fitted system can be persisted with :meth:`InspectorGadget.save` and
restored with :meth:`InspectorGadget.load`: patterns, matcher config,
labeler weights and the tuning summary round-trip to one file, and the
restored pipeline's :meth:`predict` output is byte-identical to the
original's — the train-once/serve-many split of the serving path.
"""

from __future__ import annotations

import pickle
from dataclasses import asdict, dataclass, replace
from pathlib import Path

import numpy as np

from repro.augment.policy_search import PolicySearchResult
from repro.core.artifacts import ArtifactStore, atomic_write, fingerprint
from repro.core.config import InspectorGadgetConfig
from repro.core.stages import (
    AugmentStage,
    CrowdStage,
    FeatureStage,
    LabelerStage,
    PipelineContext,
    PipelineRun,
    PipelineRunner,
    Stage,
)
from repro.crowd.workflow import CrowdResult
from repro.datasets.base import Dataset
from repro.features.generator import FeatureGenerator
from repro.imaging.autotune import AutotuneRecord
from repro.labeler.mlp import MLPLabeler
from repro.labeler.tuning import TuningResult
from repro.labeler.weak_labels import WeakLabels
from repro.patterns import Pattern
from repro.utils.rng import as_rng

__all__ = [
    "InspectorGadget",
    "FitReport",
    "ProfileError",
    "ProfileFormatError",
    "ProfileCorruptError",
    "ProfileVersionError",
]

# Bumped when the save() payload layout changes incompatibly.
_SAVE_FORMAT = 1
# Leading bytes of every profile file, checked by load() before unpickling
# so arbitrary files are rejected without executing their pickle stream.
_MAGIC = b"repro-ig-profile\x00"


class ProfileError(ValueError):
    """A saved profile could not be loaded.

    Subclasses distinguish the failure modes :meth:`InspectorGadget.load`
    can hit, so callers (the serving CLI, a fleet supervisor) can react
    differently to "this is not a profile at all" vs "this profile is
    damaged" vs "this profile needs a different code version".  All are
    ``ValueError`` subclasses for backward compatibility.
    """


class ProfileFormatError(ProfileError):
    """The file is not an InspectorGadget profile (bad magic / layout)."""


class ProfileCorruptError(ProfileError):
    """The file has a profile header but its payload is unreadable
    (truncated write, disk damage, or classes missing after a refactor)."""


class ProfileVersionError(ProfileError):
    """The profile was written by an incompatible save-format version."""


@dataclass
class FitReport:
    """What happened during :meth:`InspectorGadget.fit`."""

    dev_size: int
    dev_defective: int
    n_crowd_patterns: int
    n_total_patterns: int
    chosen_architecture: tuple[int, ...]
    dev_cv_f1: float | None


class InspectorGadget:
    """End-to-end weak labeling system (Figure 3).

    Typical use::

        ig = InspectorGadget(config)
        report = ig.fit(dataset)        # crowdsource + augment + train labeler
        weak = ig.predict(unlabeled)    # WeakLabels for new images
        ig.save("profile.igz")          # persist the fitted system ...
        ig2 = InspectorGadget.load("profile.igz")   # ... serve it elsewhere

    After fitting, only the feature generator (patterns) and labeler are
    needed for labeling — matching the components highlighted in the paper's
    architecture figure, and exactly what ``save``/``load`` round-trips.

    ``store`` overrides the artifact store built from ``config.cache_dir``
    (useful for sharing one store across pipelines in a sweep).
    """

    def __init__(self, config: InspectorGadgetConfig | None = None,
                 store: ArtifactStore | None = None):
        self.config = config or InspectorGadgetConfig()
        self._rng = as_rng(self.config.seed)
        if store is None and self.config.cache_dir is not None:
            store = ArtifactStore(self.config.cache_dir,
                                  max_bytes=self.config.cache_max_bytes)
        self.store = store
        self.crowd_result: CrowdResult | None = None
        self.feature_generator: FeatureGenerator | None = None
        self.labeler: MLPLabeler | None = None
        self.tuning: TuningResult | None = None
        self.policy_result: PolicySearchResult | None = None
        self.last_run: PipelineRun | None = None
        self.last_report: FitReport | None = None
        self._n_classes: int | None = None
        self._task: str | None = None

    # -- fitting -------------------------------------------------------------

    def fit(self, dataset: Dataset, dev_budget: int | None = None) -> FitReport:
        """Run the full staged pipeline on ``dataset``.

        ``dev_budget`` switches the crowd workflow from "annotate until the
        defective target is met" to "annotate exactly this many images"
        (the controlled variable in Figure 9's sweeps).
        """
        stages: list[Stage] = [
            CrowdStage(dev_budget),
            AugmentStage(),
            FeatureStage(),
            LabelerStage(dataset.task, dataset.n_classes),
        ]
        return self._run(stages, {"dataset": dataset},
                         task=dataset.task, n_classes=dataset.n_classes)

    def fit_from_crowd(
        self, crowd: CrowdResult, task: str, n_classes: int
    ) -> FitReport:
        """Fit augmentation, features and labeler from a finished crowd run.

        Split out so ablation experiments can reuse one crowd result across
        several augmentation/labeler settings without re-annotating; with a
        ``cache_dir`` the artifact store does the same reuse automatically.
        """
        stages: list[Stage] = [
            AugmentStage(),
            FeatureStage(),
            LabelerStage(task, n_classes),
        ]
        return self._run(stages, {"crowd": crowd},
                         task=task, n_classes=n_classes)

    def _run(self, stages: list[Stage], inputs: dict[str, object],
             task: str, n_classes: int) -> FitReport:
        """Execute a stage chain and adopt its artifacts as fitted state."""
        ctx = PipelineContext(config=self.config, rng=self._rng)
        runner = PipelineRunner(stages, store=self.store)
        self.last_run = runner.run(ctx, inputs)

        crowd: CrowdResult = ctx.data["crowd"]
        patterns: list[Pattern] = ctx.data["patterns"]
        self.crowd_result = crowd
        self.policy_result = ctx.data["policy_result"]
        self.tuning = ctx.data["tuning"]
        self.labeler = ctx.data["labeler"]
        self._task = task
        self._n_classes = n_classes
        # Rebuilt rather than cached: construction is cheap, deterministic
        # and RNG-free, and the engine holds no fitted state of its own.
        self.feature_generator = FeatureGenerator(
            patterns, self.config.matcher, n_jobs=self.config.n_jobs,
            backend=self.config.engine_backend,
            dtype=self.config.engine_dtype,
            autotune=self.config.engine_autotune,
        )
        self.last_report = FitReport(
            dev_size=len(crowd.dev),
            dev_defective=crowd.dev.n_defective,
            n_crowd_patterns=len(crowd.patterns),
            n_total_patterns=len(patterns),
            chosen_architecture=ctx.data["chosen_architecture"],
            dev_cv_f1=ctx.data["dev_cv_f1"],
        )
        return self.last_report

    # -- inference -----------------------------------------------------------

    def _require_fitted(self) -> None:
        if self.feature_generator is None or self.labeler is None:
            raise RuntimeError("InspectorGadget must be fit before predicting")

    def predict(self, data: Dataset | list[np.ndarray],
                batch_size: int | None = None) -> WeakLabels:
        """Weak labels for a dataset or a list of raw images.

        Images stream through the match engine in chunks of ``batch_size``
        (default ``config.predict_batch_size``), bounding serving memory for
        arbitrarily large batches; chunking never changes the output.
        """
        self._require_fitted()
        if len(data) == 0:
            raise ValueError(
                "predict received no images; pass a non-empty dataset or a "
                "non-empty list of 2-D arrays"
            )
        if batch_size is None:
            batch_size = self.config.predict_batch_size
        if isinstance(data, Dataset):
            features = self.feature_generator.transform(
                data, batch_size=batch_size
            )
        else:
            features = self.feature_generator.transform_images(
                list(data), batch_size=batch_size
            )
        probs = self.labeler.predict_proba(features.values)
        return WeakLabels(probs=probs)

    def predict_features(self, features: np.ndarray) -> WeakLabels:
        """Weak labels from precomputed FGF features (sweep fast path)."""
        self._require_fitted()
        return WeakLabels(probs=self.labeler.predict_proba(features))

    def warmup(self, image_shapes) -> int:
        """Precompute and pin the matching plan for each ``(h, w)`` shape.

        Serving workers call this once after :meth:`load`, so the per-shape
        FFT plans (pattern spectra, window tables, pyramid gating) are built
        before the first request instead of on it.  Warmed plans are cached
        on the match engine and their arrays are frozen read-only — the
        engine's shared state cannot be mutated after planning, which is
        what makes fanning requests out across threads or processes safe.
        Plans for shapes not warmed here are still built (and cached) on
        first use.  Returns the number of distinct shapes now cached.

        With ``config.engine_autotune`` set, this is also where plan-time
        autotuning happens: each shape's FFT-policy and row-chunk candidates
        are timed once and the winning decision recorded on the engine's
        :class:`repro.imaging.autotune.AutotuneRecord`, which ``save()``
        persists so serving workers replay it instead of re-timing.
        """
        self._require_fitted()
        for shape in image_shapes:
            self.feature_generator.warm(shape)
        return self.feature_generator.engine.cached_plan_count()

    def engine_info(self) -> dict:
        """The match engine's active backend, working dtype and autotune
        decisions — JSON-safe, for profile summaries and ``GET /profile``."""
        self._require_fitted()
        engine = self.feature_generator.engine
        record = engine.autotune_record
        return {
            "backend": engine.backend.name,
            "dtype": engine.dtype,
            "autotune": record.to_payload() if record else None,
        }

    def reconfigure_engine(self, backend: str | None = None,
                           dtype: str | None = None) -> None:
        """Rebuild the match engine under a different backend/working dtype.

        The serve-time override behind ``ServingConfig.engine_backend`` /
        ``engine_dtype``: patterns, matcher, ``n_jobs`` and the autotune
        record all carry over, only the transform route changes.  ``None``
        keeps the current value.  Scores move by FFT round-off only (the
        per-dtype tolerance lanes); determinism still holds within the new
        (backend, dtype) combination.
        """
        self._require_fitted()
        if backend is None and dtype is None:
            return
        fg = self.feature_generator
        engine = fg.engine
        self.feature_generator = FeatureGenerator(
            fg.patterns,
            fg.matcher,
            strategy=fg.strategy,
            n_jobs=engine.n_jobs,
            cache_plans=engine.cache_plans,
            backend=backend if backend is not None else engine.backend.name,
            dtype=dtype if dtype is not None else engine.dtype,
            autotune=False,
            autotune_record=engine.autotune_record,
        )

    # -- persistence ---------------------------------------------------------

    def save(self, path: str | Path) -> Path:
        """Persist the fitted serving state (patterns + matcher + labeler).

        Only what :meth:`predict` needs is written — the crowd result and
        intermediate artifacts stay in the artifact store, not the profile.
        The file also carries the config, tuning summary and fit report for
        provenance.  Returns the written path.
        """
        self._require_fitted()
        payload = {
            "format": _SAVE_FORMAT,
            "config": self.config,
            "task": self._task,
            "n_classes": self._n_classes,
            "matcher": self.feature_generator.matcher,
            "patterns": [
                {"array": p.array, "label": p.label,
                 "provenance": p.provenance, "source_image": p.source_image}
                for p in self.feature_generator.patterns
            ],
            "labeler": self.labeler.to_payload(),
            "tuning": None if self.tuning is None else self.tuning.to_payload(),
            "report": None if self.last_report is None
                      else asdict(self.last_report),
            # Plan-time autotune decisions (None when never tuned): workers
            # replay these after load() instead of re-timing, so every
            # process of a deployment executes one identical plan.
            "autotune": (
                self.feature_generator.engine.autotune_record.to_payload()
                if self.feature_generator.engine.autotune_record else None
            ),
        }
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)

        def write(fh) -> None:
            fh.write(_MAGIC)
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)

        # Atomic: an interrupted save never clobbers a good profile that
        # serving workers may be loading.
        return atomic_write(target, write)

    @classmethod
    def load(cls, path: str | Path) -> "InspectorGadget":
        """Restore a pipeline saved with :meth:`save`.

        The restored pipeline predicts byte-identically to the one that was
        saved; it can also be re-``fit``, which simply replaces the loaded
        state.

        Files without the profile header are rejected before any
        deserialization, but the payload itself is a pickle — only load
        profiles from sources you trust.

        Failure modes are distinct :class:`ProfileError` subclasses:
        :class:`ProfileFormatError` (not a profile at all — check the
        path), :class:`ProfileCorruptError` (truncated or damaged payload
        — re-run ``save``), :class:`ProfileVersionError` (written by an
        incompatible version — re-save with this code or load with the
        version that wrote it).

        The training run's ``cache_dir`` is not reattached (a profile may
        be served on a host where that path means nothing); pass a config
        or store explicitly when re-fitting a loaded pipeline with caching.
        """
        with open(path, "rb") as fh:
            if fh.read(len(_MAGIC)) != _MAGIC:
                raise ProfileFormatError(
                    f"{path} is not an InspectorGadget save file (missing "
                    "profile header); pass a path written by save()"
                )
            try:
                payload = pickle.load(fh)
            except Exception as exc:
                # A damaged or version-skewed pickle can raise nearly
                # anything (truncation, missing classes, bad state).
                raise ProfileCorruptError(
                    f"{path} is not a readable InspectorGadget save file: "
                    f"its payload is truncated or damaged ({exc}); re-save "
                    "the profile from the fitted pipeline"
                ) from exc
        if not isinstance(payload, dict) or "format" not in payload:
            raise ProfileFormatError(
                f"{path} is not an InspectorGadget save file (unexpected "
                "payload layout); pass a path written by save()"
            )
        if payload["format"] != _SAVE_FORMAT:
            raise ProfileVersionError(
                f"unsupported save format {payload['format']!r} "
                f"(this version reads format {_SAVE_FORMAT}); re-save the "
                "profile with this version or load it with the one that "
                "wrote it"
            )
        try:
            config = payload["config"]
            # Profiles saved before the engine-backend fields existed
            # restore a config __dict__ without them; heal with the
            # defaults (which reproduce the old behavior exactly) so
            # replace() below sees every field.
            for name, default in (("engine_backend", "numpy"),
                                  ("engine_dtype", "float64"),
                                  ("engine_autotune", False)):
                if not hasattr(config, name):
                    setattr(config, name, default)
            ig = cls(replace(config, cache_dir=None))
            ig._task = payload["task"]
            ig._n_classes = payload["n_classes"]
            patterns = [
                Pattern(array=entry["array"], label=entry["label"],
                        provenance=entry["provenance"],
                        source_image=entry["source_image"])
                for entry in payload["patterns"]
            ]
            # Decisions replay (autotune=False): a loaded profile never
            # re-times, so all workers loading it share one plan.
            ig.feature_generator = FeatureGenerator(
                patterns, payload["matcher"], n_jobs=ig.config.n_jobs,
                backend=ig.config.engine_backend,
                dtype=ig.config.engine_dtype,
                autotune_record=AutotuneRecord.from_payload(
                    payload.get("autotune")
                ),
            )
            ig.labeler = MLPLabeler.from_payload(payload["labeler"])
            if payload["tuning"] is not None:
                ig.tuning = TuningResult.from_payload(payload["tuning"],
                                                      labeler=ig.labeler)
            if payload["report"] is not None:
                ig.last_report = FitReport(**payload["report"])
        except (KeyError, TypeError, IndexError, AttributeError) as exc:
            # Right magic, right version, wrong shape (foreign writer or a
            # hand-edited file): missing fields raise KeyError, wrong-typed
            # fields raise TypeError/AttributeError downstream — all of it
            # is a format problem, not a crash.
            raise ProfileFormatError(
                f"{path} is not an InspectorGadget save file (payload has "
                f"a missing field or mistyped value: {exc!r}); pass a "
                "path written by save()"
            ) from exc
        return ig

    def serving_fingerprint(self) -> str:
        """Content fingerprint of the serving state (patterns + labeler).

        Two pipelines with equal fingerprints produce byte-identical
        predictions; useful for cache keys and deployment audits.  The
        engine backend, working dtype and autotune decisions enter the
        fingerprint only when they differ from the defaults, so
        fingerprints of historical profiles are unchanged — but any
        combination that can move scores (a different dtype, a tuned FFT
        policy) names itself.
        """
        self._require_fitted()
        key = [
            "serving",
            self.feature_generator.matcher,
            [p.array for p in self.feature_generator.patterns],
            self.labeler.to_payload(),
        ]
        info = self.engine_info()
        if (info["backend"], info["dtype"]) != ("numpy", "float64") \
                or info["autotune"]:
            key.append(("engine", info["backend"], info["dtype"],
                        info["autotune"]))
        return fingerprint(tuple(key))
