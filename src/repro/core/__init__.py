"""The Inspector Gadget pipeline (the paper's primary contribution).

Combines the crowdsourcing workflow, pattern augmenter, feature generator
and tuned MLP labeler into one system that turns an unlabeled image pool
plus a small annotation budget into weak labels at scale (Figures 2-3).

The system runs as a staged pipeline (``repro.core.stages``): each component
is a :class:`Stage` with declared inputs/outputs, driven by a
:class:`PipelineRunner` over a content-addressed :class:`ArtifactStore`
(``repro.core.artifacts``) so unchanged stages are reused across fits.
"""

from repro.core.artifacts import ArtifactStore, fingerprint
from repro.core.config import InspectorGadgetConfig, ServingConfig
from repro.core.pipeline import (
    FitReport,
    InspectorGadget,
    ProfileCorruptError,
    ProfileError,
    ProfileFormatError,
    ProfileVersionError,
)
from repro.core.stages import (
    AugmentStage,
    CrowdStage,
    FeatureStage,
    LabelerStage,
    PipelineContext,
    PipelineRun,
    PipelineRunner,
    Stage,
    StageExecution,
)

__all__ = [
    "InspectorGadget",
    "InspectorGadgetConfig",
    "ServingConfig",
    "FitReport",
    "ProfileError",
    "ProfileFormatError",
    "ProfileCorruptError",
    "ProfileVersionError",
    "ArtifactStore",
    "fingerprint",
    "Stage",
    "CrowdStage",
    "AugmentStage",
    "FeatureStage",
    "LabelerStage",
    "PipelineContext",
    "PipelineRun",
    "PipelineRunner",
    "StageExecution",
]
