"""The Inspector Gadget pipeline (the paper's primary contribution).

Combines the crowdsourcing workflow, pattern augmenter, feature generator
and tuned MLP labeler into one system that turns an unlabeled image pool
plus a small annotation budget into weak labels at scale (Figures 2-3).
"""

from repro.core.config import InspectorGadgetConfig
from repro.core.pipeline import FitReport, InspectorGadget

__all__ = ["InspectorGadget", "InspectorGadgetConfig", "FitReport"]
