"""Top-level configuration for the Inspector Gadget pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.augment.augmenter import AugmentConfig
from repro.crowd.workflow import WorkflowConfig
from repro.imaging.pyramid import PyramidMatcher

__all__ = ["InspectorGadgetConfig"]


@dataclass
class InspectorGadgetConfig:
    """All pipeline knobs in one place.

    ``tune_max_layers`` / ``tune_min_per_class`` parameterize the labeler
    architecture search (Section 5.2); ``labeler_max_iter`` bounds each
    L-BFGS run.  Set ``tune`` to False to skip model tuning and train a
    single default MLP (used by the Figure 11 ablation).

    ``n_jobs`` parallelises batched feature generation over images
    (``-1`` = one thread per CPU); it never changes results — the match
    engine's output is byte-identical for any ``n_jobs``.

    ``cache_dir`` enables the content-addressed artifact store: stage
    outputs (crowd result, augmented patterns, dev feature matrix, fitted
    labeler) are fingerprinted and persisted there, so re-running ``fit``
    with an unchanged configuration loads every stage from disk instead of
    recomputing — with byte-identical results either way.  ``None`` (the
    default) disables caching entirely.

    ``predict_batch_size`` chunks inference through the match engine so
    serving arbitrarily large image batches keeps bounded memory; like
    ``n_jobs`` and ``cache_dir`` it never changes results, only execution.
    """

    workflow: WorkflowConfig = field(default_factory=WorkflowConfig)
    augment: AugmentConfig = field(default_factory=AugmentConfig)
    matcher: PyramidMatcher = field(default_factory=PyramidMatcher)
    n_jobs: int = 1
    tune: bool = True
    tune_max_layers: int = 3
    tune_min_per_class: int = 20
    labeler_max_iter: int = 150
    default_hidden: tuple[int, ...] = (8,)
    seed: int = 0
    cache_dir: str | None = None
    predict_batch_size: int = 64

    def __post_init__(self) -> None:
        if self.n_jobs != -1 and self.n_jobs < 1:
            raise ValueError("n_jobs must be >= 1 or -1")
        if self.tune_max_layers < 1:
            raise ValueError("tune_max_layers must be >= 1")
        if self.labeler_max_iter < 1:
            raise ValueError("labeler_max_iter must be >= 1")
        if self.predict_batch_size < 1:
            raise ValueError("predict_batch_size must be >= 1")
