"""Top-level configuration for the Inspector Gadget pipeline."""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.augment.augmenter import AugmentConfig
from repro.crowd.workflow import WorkflowConfig
from repro.imaging.backend import WORKING_DTYPES
from repro.imaging.pyramid import PyramidMatcher

__all__ = ["InspectorGadgetConfig", "ServingConfig"]

_START_METHODS = ("spawn", "fork", "forkserver")
_HTTP_BACKENDS = ("threaded", "asyncio")
_IPC_TRANSPORTS = ("auto", "shm", "pickle")


@dataclass
class ServingConfig:
    """Deployment knobs for the multi-process serving pool.

    This is a *runtime* slice: none of these settings participate in
    fitting, fingerprinting or the saved profile.  With one deliberate
    exception, none of them can change predictions — the pool's output is
    byte-identical to single-process ``predict`` for any value of any knob
    here.  The exception is the pair of engine overrides below:
    ``engine_backend`` / ``engine_dtype`` re-route the match engine's FFT
    transforms through a different array backend or working precision *at
    serve time* (``None``, the default, keeps whatever the profile was
    trained with).  Overriding moves scores by FFT round-off (float32 is
    bounded by the ~1e-4 equivalence lane), so the byte-identity guarantee
    becomes per-(backend, dtype): the pool is still byte-identical to a
    single-process ``predict`` running under the *same* override, for any
    worker count or batching.

    ``workers`` is the number of worker processes, each loading the
    profile once.  The dispatcher coalesces waiting requests into
    micro-batches of at most ``max_batch`` images, waiting up to
    ``max_wait_ms`` for more requests to arrive before dispatching a
    partial batch (``0`` dispatches immediately — lowest latency, least
    coalescing).  A crashed worker is replaced automatically at most
    ``max_respawns`` times over the pool's lifetime before the pool
    fails pending requests instead of retrying forever.

    ``start_method`` selects the :mod:`multiprocessing` start method.
    The default ``"spawn"`` is safe regardless of parent threads (the
    dispatcher runs threads in the parent); ``"fork"`` starts faster on
    POSIX but inherits the parent's whole state.  ``start_timeout_s``
    bounds how long pool construction waits for every worker to load
    the profile and report ready; ``request_timeout_s`` is the default
    bound a blocking ``predict`` waits for its response.

    ``warmup_shapes`` lists image shapes (height, width) whose matching
    plans each worker precomputes at startup, so the first request for
    those shapes pays no planning cost.

    ``http_host``/``http_port`` are the default bind address of the HTTP
    front ends (:func:`repro.serving.http.serve_http` and
    :func:`repro.serving.aio.serve_http_async`); port ``0`` binds an
    ephemeral port, readable back from the front end.  The default host is
    loopback — exposing a pool beyond the machine is an explicit decision
    (``0.0.0.0``/``::``), not a default.  IPv6 hosts work on both backends
    (``"::1"``; the CLI flag form is ``[::1]:8765``).
    ``http_backend`` picks the transport implementation: ``"threaded"``
    (stdlib ``ThreadingHTTPServer``, one thread per connection) or
    ``"asyncio"`` (:mod:`repro.serving.aio`, one event loop, bounded
    threads — the high-concurrency choice).  Both serve the identical
    endpoint surface with byte-identical responses.

    ``ipc_transport`` picks how task/result payloads cross the
    parent↔worker process boundary: ``"shm"`` ships zero-copy
    shared-memory slab descriptors (:mod:`repro.serving.shm`),
    ``"pickle"`` is the reference lane (arrays pickled through the
    queues), and ``"auto"`` — the default — probes the host and uses
    ``shm`` where POSIX shared memory works, ``pickle`` elsewhere.  The
    default honours the ``REPRO_SERVING_IPC`` environment variable so CI
    can sweep both lanes without touching call sites.  Like every other
    transport knob, it moves bytes but never regroups computation:
    responses stay byte-identical across transports.

    ``max_request_bytes`` bounds an HTTP request body; larger requests are
    refused with 413 before being read, so one misbehaving client cannot
    balloon parent memory (gzip request bodies are bounded by the same
    limit *before* full decompression).  ``gzip_responses`` /
    ``gzip_min_bytes`` / ``gzip_level`` control response compression:
    bodies of at least ``gzip_min_bytes`` are gzipped at ``gzip_level``
    for clients that send ``Accept-Encoding: gzip`` (base64 float64
    images are ~3× raw, so this is a real wire win; compressed bytes are
    deterministic, preserving transport byte-identity).

    The ``ingest_*`` knobs configure the watch-folder ingestion loop
    (:mod:`repro.serving.ingest`, the CLI's ``--watch``):
    ``ingest_poll_interval_s`` is the scanner cadence (inotify, when
    available, only wakes it early), ``ingest_stable_polls`` how many
    consecutive unchanged ``(size, mtime)`` observations a file needs
    before it is read (half-written files wait), ``ingest_max_in_flight``
    the backpressure bound on files submitted but not yet verdicted,
    ``ingest_max_failures`` the decode/score attempts before a poison
    file is quarantined, ``ingest_commit_lines`` /
    ``ingest_commit_interval_s`` the sink-flush + ledger-fsync commit
    cadence (whichever comes first), and ``ingest_suffixes`` the file
    extensions the scanner picks up.  Like the transport knobs, none of
    these can change a verdict — only when and how it is produced.

    The ``fleet_*`` knobs configure the cross-host router
    (:mod:`repro.serving.fleet`, the CLI's ``--fleet``):
    ``fleet_retry_limit`` bounds how many *additional* members a failed
    idempotent request is retried on (0 disables failover),
    ``fleet_eject_failures`` how many consecutive failures eject a
    member from rotation, and ``fleet_probe_interval_s`` how often the
    router health-probes ejected members for readmission.
    ``profile_store`` names a shared profile store — a local directory
    or the ``http(s)://`` base URL of a serving host — that the CLI
    resolves bare fingerprints against (``--profile-store``); ``None``
    keeps profiles purely file-path based.  Fleet knobs shard requests
    but never split one: responses through a router stay byte-identical
    to single-process ``predict``.
    """

    workers: int = 2
    max_batch: int = 8
    max_wait_ms: float = 2.0
    max_respawns: int = 2
    start_method: str = "spawn"
    start_timeout_s: float = 120.0
    request_timeout_s: float = 300.0
    warmup_shapes: tuple[tuple[int, int], ...] = ()
    http_host: str = "127.0.0.1"
    http_port: int = 8765
    http_backend: str = "threaded"
    ipc_transport: str = field(
        default_factory=lambda: os.environ.get("REPRO_SERVING_IPC", "auto")
    )
    max_request_bytes: int = 64 * 1024 * 1024
    gzip_responses: bool = True
    gzip_min_bytes: int = 512
    gzip_level: int = 6
    engine_backend: str | None = None
    engine_dtype: str | None = None
    ingest_poll_interval_s: float = 0.25
    ingest_stable_polls: int = 2
    ingest_max_in_flight: int = 16
    ingest_max_failures: int = 3
    ingest_commit_lines: int = 32
    ingest_commit_interval_s: float = 1.0
    ingest_suffixes: tuple[str, ...] = (".npy",)
    fleet_retry_limit: int = 2
    fleet_eject_failures: int = 2
    fleet_probe_interval_s: float = 1.0
    profile_store: str | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_ms < 0:
            raise ValueError(
                f"max_wait_ms must be >= 0, got {self.max_wait_ms}"
            )
        if self.max_respawns < 0:
            raise ValueError(
                f"max_respawns must be >= 0, got {self.max_respawns}"
            )
        if self.start_method not in _START_METHODS:
            raise ValueError(
                f"start_method must be one of {_START_METHODS}, "
                f"got {self.start_method!r}"
            )
        if self.start_timeout_s <= 0:
            raise ValueError(
                f"start_timeout_s must be > 0, got {self.start_timeout_s}"
            )
        if self.request_timeout_s <= 0:
            raise ValueError(
                f"request_timeout_s must be > 0, got {self.request_timeout_s}"
            )
        self.warmup_shapes = tuple(
            tuple(int(side) for side in shape) for shape in self.warmup_shapes
        )
        for shape in self.warmup_shapes:
            if len(shape) != 2 or shape[0] < 1 or shape[1] < 1:
                raise ValueError(
                    "warmup_shapes entries must be (height, width) pairs of "
                    f"positive ints, got {shape!r}"
                )
        if not isinstance(self.http_host, str) or not self.http_host:
            raise ValueError(
                f"http_host must be a non-empty host string, "
                f"got {self.http_host!r}"
            )
        if not 0 <= self.http_port <= 65535:
            raise ValueError(
                f"http_port must be in [0, 65535] (0 = ephemeral), "
                f"got {self.http_port}"
            )
        if self.http_backend not in _HTTP_BACKENDS:
            raise ValueError(
                f"http_backend must be one of {_HTTP_BACKENDS}, "
                f"got {self.http_backend!r}"
            )
        if self.ipc_transport not in _IPC_TRANSPORTS:
            raise ValueError(
                f"ipc_transport must be one of {_IPC_TRANSPORTS}, "
                f"got {self.ipc_transport!r}"
            )
        if self.max_request_bytes < 1024:
            raise ValueError(
                "max_request_bytes must be >= 1024 (one image envelope "
                f"never fits below that), got {self.max_request_bytes}"
            )
        if self.gzip_min_bytes < 0:
            raise ValueError(
                f"gzip_min_bytes must be >= 0, got {self.gzip_min_bytes}"
            )
        if not 1 <= self.gzip_level <= 9:
            raise ValueError(
                f"gzip_level must be in [1, 9], got {self.gzip_level}"
            )
        if self.engine_backend is not None and (
            not isinstance(self.engine_backend, str) or not self.engine_backend
        ):
            raise ValueError(
                "engine_backend must be None or a backend name, "
                f"got {self.engine_backend!r}"
            )
        if self.engine_dtype is not None and self.engine_dtype not in WORKING_DTYPES:
            raise ValueError(
                f"engine_dtype must be None or one of {WORKING_DTYPES}, "
                f"got {self.engine_dtype!r}"
            )
        if self.ingest_poll_interval_s <= 0:
            raise ValueError(
                "ingest_poll_interval_s must be > 0, "
                f"got {self.ingest_poll_interval_s}"
            )
        if self.ingest_stable_polls < 1:
            raise ValueError(
                f"ingest_stable_polls must be >= 1, "
                f"got {self.ingest_stable_polls}"
            )
        if self.ingest_max_in_flight < 1:
            raise ValueError(
                f"ingest_max_in_flight must be >= 1, "
                f"got {self.ingest_max_in_flight}"
            )
        if self.ingest_max_failures < 1:
            raise ValueError(
                f"ingest_max_failures must be >= 1, "
                f"got {self.ingest_max_failures}"
            )
        if self.ingest_commit_lines < 1:
            raise ValueError(
                f"ingest_commit_lines must be >= 1, "
                f"got {self.ingest_commit_lines}"
            )
        if self.ingest_commit_interval_s <= 0:
            raise ValueError(
                "ingest_commit_interval_s must be > 0, "
                f"got {self.ingest_commit_interval_s}"
            )
        self.ingest_suffixes = tuple(self.ingest_suffixes)
        if not self.ingest_suffixes or not all(
            isinstance(s, str) and s.startswith(".") and len(s) > 1
            for s in self.ingest_suffixes
        ):
            raise ValueError(
                "ingest_suffixes must be a non-empty tuple of "
                f"'.ext' strings, got {self.ingest_suffixes!r}"
            )
        if self.fleet_retry_limit < 0:
            raise ValueError(
                f"fleet_retry_limit must be >= 0, "
                f"got {self.fleet_retry_limit}"
            )
        if self.fleet_eject_failures < 1:
            raise ValueError(
                f"fleet_eject_failures must be >= 1, "
                f"got {self.fleet_eject_failures}"
            )
        if self.fleet_probe_interval_s <= 0:
            raise ValueError(
                "fleet_probe_interval_s must be > 0, "
                f"got {self.fleet_probe_interval_s}"
            )
        if self.profile_store is not None and (
            not isinstance(self.profile_store, str) or not self.profile_store
        ):
            raise ValueError(
                "profile_store must be None or a non-empty directory path "
                f"or http(s) URL, got {self.profile_store!r}"
            )


@dataclass
class InspectorGadgetConfig:
    """All pipeline knobs in one place.

    ``tune_max_layers`` / ``tune_min_per_class`` parameterize the labeler
    architecture search (Section 5.2); ``labeler_max_iter`` bounds each
    L-BFGS run.  Set ``tune`` to False to skip model tuning and train a
    single default MLP (used by the Figure 11 ablation).

    ``n_jobs`` parallelises batched feature generation over images
    (``-1`` = one thread per CPU); it never changes results — the match
    engine's output is byte-identical for any ``n_jobs``.

    ``cache_dir`` enables the content-addressed artifact store: stage
    outputs (crowd result, augmented patterns, dev feature matrix, fitted
    labeler) are fingerprinted and persisted there, so re-running ``fit``
    with an unchanged configuration loads every stage from disk instead of
    recomputing — with byte-identical results either way.  ``None`` (the
    default) disables caching entirely.

    ``predict_batch_size`` chunks inference through the match engine so
    serving arbitrarily large image batches keeps bounded memory; like
    ``n_jobs`` and ``cache_dir`` it never changes results, only execution.

    ``cache_max_bytes`` bounds the artifact store's on-disk footprint:
    when a stage output would push the store past the budget, the least
    recently used artifacts are evicted (a damaged-or-missing artifact is
    always just a recompute, never an error).  ``None`` keeps the store
    unbounded.

    ``engine_backend`` / ``engine_dtype`` select the match engine's array
    backend and working precision (:mod:`repro.imaging.backend`).  The
    defaults — numpy, float64 — are the byte-identical reference; other
    combinations trade FFT round-off (float32 stays within the ~1e-4
    equivalence lane) for throughput, and feature-stage fingerprints
    include them whenever they differ from the defaults.
    ``engine_autotune`` lets ``warmup()`` time FFT padding policies and
    row-chunk sizes per image shape and record the winners in the profile;
    serving workers then *replay* the recorded decisions, so tuning never
    breaks cross-worker byte-identity.
    """

    workflow: WorkflowConfig = field(default_factory=WorkflowConfig)
    augment: AugmentConfig = field(default_factory=AugmentConfig)
    matcher: PyramidMatcher = field(default_factory=PyramidMatcher)
    n_jobs: int = 1
    tune: bool = True
    tune_max_layers: int = 3
    tune_min_per_class: int = 20
    labeler_max_iter: int = 150
    default_hidden: tuple[int, ...] = (8,)
    seed: int = 0
    cache_dir: str | None = None
    cache_max_bytes: int | None = None
    predict_batch_size: int = 64
    engine_backend: str = "numpy"
    engine_dtype: str = "float64"
    engine_autotune: bool = False

    def __post_init__(self) -> None:
        if self.n_jobs != -1 and self.n_jobs < 1:
            raise ValueError("n_jobs must be >= 1 or -1")
        if not isinstance(self.engine_backend, str) or not self.engine_backend:
            raise ValueError(
                f"engine_backend must be a backend name, "
                f"got {self.engine_backend!r}"
            )
        if self.engine_dtype not in WORKING_DTYPES:
            raise ValueError(
                f"engine_dtype must be one of {WORKING_DTYPES}, "
                f"got {self.engine_dtype!r}"
            )
        if self.tune_max_layers < 1:
            raise ValueError("tune_max_layers must be >= 1")
        if self.labeler_max_iter < 1:
            raise ValueError("labeler_max_iter must be >= 1")
        if self.predict_batch_size < 1:
            raise ValueError("predict_batch_size must be >= 1")
        if self.cache_max_bytes is not None and self.cache_max_bytes < 1:
            raise ValueError("cache_max_bytes must be >= 1 or None")
