"""The staged pipeline: Figure 3's dataflow as explicit, cacheable stages.

The paper presents Inspector Gadget as a chain of components —
crowdsourcing → pattern augmentation → feature generation → labeler tuning —
and this module makes that chain a first-class object.  Each :class:`Stage`
declares the artifacts it consumes (``requires``) and produces
(``provides``) and knows which slice of :class:`InspectorGadgetConfig`
determines its output.  :class:`PipelineRunner` executes the chain in order,
addressing every stage's output in an :class:`~repro.core.artifacts.ArtifactStore`
by a fingerprint of (stage config, upstream chain, injected inputs), so an
unchanged prefix of the pipeline is loaded from disk instead of recomputed.

Determinism across cache hits
-----------------------------
The whole pipeline threads **one** RNG stream through its stages (crowd
sampling, policy search, GAN training, labeler init all draw from it in
sequence), so skipping a stage would normally desynchronize every stage
after it.  The runner therefore snapshots the generator state *after* each
executed stage and stores it with the artifact; a cache hit restores both
the outputs and the stream position.  A warm run is byte-identical to the
cold run it replays — the property the determinism and save/load tests pin
down — and numerics are unchanged from the pre-staged monolithic ``fit``.

Stage fingerprints chain linearly (each includes its predecessor's) rather
than following the artifact DAG: with a shared RNG stream, a stage's output
legitimately depends on everything executed before it, whether or not it
reads those artifacts.  Execution knobs that provably do not change results
(``n_jobs``, ``predict_batch_size``, ``cache_dir``) stay out of every
fingerprint, so a sweep may vary them and still share artifacts.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field

import numpy as np

from repro.augment.augmenter import PatternAugmenter
from repro.core.artifacts import ArtifactStore, fingerprint
from repro.core.config import InspectorGadgetConfig
from repro.crowd.workflow import CrowdsourcingWorkflow
from repro.features.generator import FeatureGenerator
from repro.labeler.mlp import MLPLabeler
from repro.labeler.tuning import tune_labeler

__all__ = [
    "PipelineContext",
    "Stage",
    "CrowdStage",
    "AugmentStage",
    "FeatureStage",
    "LabelerStage",
    "StageExecution",
    "PipelineRun",
    "PipelineRunner",
]


@dataclass
class PipelineContext:
    """Mutable state shared by the stages of one pipeline run.

    ``data`` maps artifact names to values; stages read their ``requires``
    from it and the runner merges their outputs back into it.  ``rng`` is
    the single stream every stochastic stage draws from, in order.
    """

    config: InspectorGadgetConfig
    rng: np.random.Generator
    data: dict[str, object] = field(default_factory=dict)

    def require(self, name: str):
        if name not in self.data:
            raise KeyError(
                f"stage input {name!r} missing from pipeline context; "
                f"available: {sorted(self.data)}"
            )
        return self.data[name]


class Stage:
    """One pipeline component with declared inputs, outputs and config.

    Subclasses set ``name`` / ``requires`` / ``provides`` and implement
    :meth:`config_key` (the slice of the config that determines the output —
    the cache is invalidated exactly when it changes) and :meth:`run`
    (compute the output artifacts from the context).
    """

    name: str = "stage"
    requires: tuple[str, ...] = ()
    provides: tuple[str, ...] = ()

    def config_key(self, config: InspectorGadgetConfig):
        raise NotImplementedError

    def run(self, ctx: PipelineContext) -> dict[str, object]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(name={self.name!r}, "
                f"requires={self.requires}, provides={self.provides})")


class CrowdStage(Stage):
    """Simulated crowdsourcing: sample, annotate, combine, review (Figure 4)."""

    name = "crowd"
    requires = ("dataset",)
    provides = ("crowd",)

    def __init__(self, dev_budget: int | None = None):
        self.dev_budget = dev_budget

    def config_key(self, config: InspectorGadgetConfig):
        return (config.workflow, self.dev_budget)

    def run(self, ctx: PipelineContext) -> dict[str, object]:
        dataset = ctx.require("dataset")
        workflow = CrowdsourcingWorkflow(ctx.config.workflow, seed=ctx.rng)
        if self.dev_budget is None:
            crowd = workflow.run(dataset)
        else:
            crowd = workflow.run_fixed(dataset, self.dev_budget)
        if not crowd.patterns:
            raise RuntimeError(
                "crowdsourcing produced no patterns; increase the annotation "
                "budget or check worker noise settings"
            )
        return {"crowd": crowd}


class AugmentStage(Stage):
    """Pattern augmentation: policy search and/or GAN synthesis (Section 4)."""

    name = "augment"
    requires = ("crowd",)
    provides = ("patterns", "policy_result")

    def config_key(self, config: InspectorGadgetConfig):
        # The matcher participates because the policy search scores augmented
        # patterns through it.
        return (config.augment, config.matcher)

    def run(self, ctx: PipelineContext) -> dict[str, object]:
        crowd = ctx.require("crowd")
        augmenter = PatternAugmenter(
            ctx.config.augment, ctx.config.matcher, seed=ctx.rng,
            n_jobs=ctx.config.n_jobs,
        )
        outcome = augmenter.run(crowd.patterns, crowd.dev)
        return {"patterns": outcome.patterns,
                "policy_result": outcome.policy_result}


class FeatureStage(Stage):
    """Feature generation: the dev-set images × patterns NCC matrix (§5.1)."""

    name = "features"
    requires = ("patterns", "crowd")
    provides = ("dev_features",)

    def config_key(self, config: InspectorGadgetConfig):
        # The engine backend/dtype move feature values by FFT round-off, so
        # they must enter the fingerprint — but only when non-default, so
        # every artifact fingerprinted before the backend seam existed
        # (always numpy/float64) stays addressable.
        if (config.engine_backend, config.engine_dtype) != ("numpy", "float64"):
            return (config.matcher, config.engine_backend, config.engine_dtype)
        return (config.matcher,)

    def run(self, ctx: PipelineContext) -> dict[str, object]:
        crowd = ctx.require("crowd")
        generator = FeatureGenerator(
            ctx.require("patterns"), ctx.config.matcher,
            n_jobs=ctx.config.n_jobs,
            backend=ctx.config.engine_backend,
            dtype=ctx.config.engine_dtype,
        )
        return {"dev_features": generator.transform(crowd.dev)}


class LabelerStage(Stage):
    """Labeler training: architecture search (§5.2) or a single default MLP."""

    name = "labeler"
    requires = ("dev_features", "crowd")
    provides = ("labeler", "tuning", "chosen_architecture", "dev_cv_f1")

    def __init__(self, task: str, n_classes: int):
        self.task = task
        self.n_classes = n_classes

    def config_key(self, config: InspectorGadgetConfig):
        return (
            config.tune, config.tune_max_layers, config.tune_min_per_class,
            config.labeler_max_iter, config.default_hidden,
            self.task, self.n_classes,
        )

    def run(self, ctx: PipelineContext) -> dict[str, object]:
        config = ctx.config
        crowd = ctx.require("crowd")
        dev_features = ctx.require("dev_features")
        dev_labels = crowd.dev.labels
        if config.tune:
            tuning = tune_labeler(
                dev_features.values,
                dev_labels,
                n_classes=self.n_classes,
                task=self.task,
                seed=ctx.rng,
                max_layers=config.tune_max_layers,
                min_per_class=config.tune_min_per_class,
                max_iter=config.labeler_max_iter,
            )
            return {"labeler": tuning.labeler, "tuning": tuning,
                    "chosen_architecture": tuning.best_hidden,
                    "dev_cv_f1": tuning.best_score}
        labeler = MLPLabeler(
            input_dim=dev_features.values.shape[1],
            hidden=config.default_hidden,
            n_classes=self.n_classes,
            seed=ctx.rng,
            max_iter=config.labeler_max_iter,
        )
        labeler.fit(dev_features.values, dev_labels)
        return {"labeler": labeler, "tuning": None,
                "chosen_architecture": config.default_hidden,
                "dev_cv_f1": None}


@dataclass
class StageExecution:
    """How one stage resolved during a run: computed or loaded from cache."""

    name: str
    fingerprint: str
    cached: bool
    duration: float


@dataclass
class PipelineRun:
    """Execution record of one :meth:`PipelineRunner.run`."""

    executions: list[StageExecution] = field(default_factory=list)

    @property
    def executed(self) -> list[str]:
        """Names of stages that actually computed their outputs."""
        return [e.name for e in self.executions if not e.cached]

    @property
    def cached(self) -> list[str]:
        """Names of stages satisfied from the artifact store."""
        return [e.name for e in self.executions if e.cached]

    @property
    def n_executed(self) -> int:
        return len(self.executed)

    @property
    def n_cached(self) -> int:
        return len(self.cached)


def _rng_state(rng: np.random.Generator) -> dict:
    """A detached snapshot of the generator's position in its stream."""
    return copy.deepcopy(rng.bit_generator.state)


class PipelineRunner:
    """Drives a stage chain, consulting the artifact store before each stage.

    ``inputs`` passed to :meth:`run` are externally injected artifacts (the
    dataset for ``fit``, a finished crowd result for ``fit_from_crowd``);
    their content fingerprints seed the chain so a different dataset or
    crowd run can never alias another's cache entries.  The entry RNG state
    is folded in as well: re-fitting on the *same* advanced generator (e.g.
    a second ``fit`` on one ``InspectorGadget`` instance) keys differently
    from a fresh one, preserving the pre-refactor stream semantics.
    """

    def __init__(self, stages: list[Stage], store: ArtifactStore | None = None):
        if not stages:
            raise ValueError("PipelineRunner needs at least one stage")
        self.stages = list(stages)
        self.store = store

    def run(self, ctx: PipelineContext,
            inputs: dict[str, object]) -> PipelineRun:
        ctx.data.update(inputs)
        # Wiring check before any hashing or execution: every stage's
        # requirements must be met by the inputs or a stage *earlier* in
        # the chain (a later provider would still fail at run time).
        available = set(ctx.data)
        for stage in self.stages:
            for name in stage.requires:
                if name not in available:
                    raise ValueError(
                        f"stage {stage.name!r} requires {name!r}, which no "
                        "earlier stage provides and no input supplies"
                    )
            available.update(stage.provides)
        if self.store is not None:
            chain = fingerprint((
                "pipeline-entry",
                _rng_state(ctx.rng),
                sorted((name, fingerprint(value))
                       for name, value in inputs.items()),
            ))
        else:
            # No store: nothing to address, so skip hashing the inputs
            # (which includes every image of the dataset).
            chain = ""
        run = PipelineRun()
        for stage in self.stages:
            if self.store is not None:
                chain = fingerprint(
                    ("stage", stage.name, stage.config_key(ctx.config), chain)
                )
            start = time.perf_counter()
            payload = self.store.load(chain) if self.store is not None else None
            if payload is not None:
                ctx.data.update(payload["outputs"])
                ctx.rng.bit_generator.state = payload["rng_state"]
                cached = True
            else:
                outputs = stage.run(ctx)
                missing = set(stage.provides) - set(outputs)
                if missing:
                    raise RuntimeError(
                        f"stage {stage.name!r} did not provide {sorted(missing)}"
                    )
                ctx.data.update(outputs)
                if self.store is not None:
                    self.store.save(chain, {
                        "outputs": outputs,
                        "rng_state": _rng_state(ctx.rng),
                    })
                cached = False
            run.executions.append(StageExecution(
                name=stage.name,
                fingerprint=chain,
                cached=cached,
                duration=time.perf_counter() - start,
            ))
        return run
