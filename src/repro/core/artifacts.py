"""Content-addressed artifact store for pipeline stage outputs.

Every stage output is addressed by a *fingerprint*: a SHA-256 digest of the
stage's configuration, its position in the stage chain, and the content of
everything it consumes (dataset images, crowd results, upstream stage
fingerprints).  Two runs that would compute the same artifact therefore hash
to the same key, and the second run loads the pickled artifact instead of
recomputing it — this is what lets the ablation sweeps (Figures 9-11,
Table 4) share one crowd run and one feature matrix across settings.

:func:`fingerprint` canonicalizes the value kinds that appear in pipeline
configs and artifacts — dataclasses, numpy arrays and scalars, containers,
primitives — into a stable byte stream.  Unknown types raise instead of
hashing their ``repr``, so a silently unstable key can never corrupt cache
correctness.

:class:`ArtifactStore` is deliberately dumb: flat directory of
``<digest>.pkl`` files, atomic writes (temp file + ``os.replace``), corrupt
or unreadable entries treated as misses, optional size-bounded LRU
eviction (``max_bytes``).  Hit/miss counters feed the
``pipeline_cache`` benchmark and the stage-execution assertions in the test
suite.
"""

from __future__ import annotations

import dataclasses
import hashlib
import inspect
import os
import pickle
import tempfile
from pathlib import Path

import numpy as np

__all__ = ["fingerprint", "ArtifactStore", "atomic_write"]

# Bump to invalidate every previously written artifact (e.g. when a stage's
# semantics change without its config changing).
FORMAT_VERSION = 1


def _update(h, obj) -> None:
    """Feed one canonicalized value into the running hash.

    Every branch writes a type tag before the payload so values of different
    types can never collide ("1" vs 1 vs True), and containers write their
    length so concatenations can't alias ([["a"], []] vs [[], ["a"]]).
    """
    if obj is None:
        h.update(b"N")
    elif isinstance(obj, (bool, np.bool_)):
        h.update(b"B1" if obj else b"B0")
    elif isinstance(obj, (int, np.integer)):
        h.update(b"I" + str(int(obj)).encode() + b";")
    elif isinstance(obj, (float, np.floating)):
        h.update(b"F" + float(obj).hex().encode() + b";")
    elif isinstance(obj, str):
        data = obj.encode()
        h.update(b"S" + str(len(data)).encode() + b":" + data)
    elif isinstance(obj, bytes):
        h.update(b"Y" + str(len(obj)).encode() + b":" + obj)
    elif isinstance(obj, np.ndarray):
        if obj.dtype.hasobject:
            raise TypeError(
                "cannot fingerprint object-dtype arrays: their raw bytes "
                "are memory addresses, not content"
            )
        arr = np.ascontiguousarray(obj)
        h.update(b"A" + str(arr.dtype).encode() + str(arr.shape).encode())
        h.update(arr.tobytes())
    elif isinstance(obj, (list, tuple)):
        h.update((b"L" if isinstance(obj, list) else b"T")
                 + str(len(obj)).encode() + b":")
        for item in obj:
            _update(h, item)
    elif isinstance(obj, (dict,)):
        keys = sorted(obj, key=repr)
        h.update(b"D" + str(len(keys)).encode() + b":")
        for key in keys:
            _update(h, key)
            _update(h, obj[key])
    elif inspect.isroutine(obj):
        # Functions appear in configs as named operations (e.g. PolicyOp's
        # apply); their stable identity is where they live, not their bytes.
        # Lambdas have no such identity (every one is '<lambda>' and edits
        # to the body are invisible), so they must not be hashable here.
        if "<lambda>" in obj.__qualname__:
            raise TypeError(
                "cannot fingerprint lambdas: they have no stable identity; "
                "use a named module-level function"
            )
        h.update(b"R" + f"{obj.__module__}.{obj.__qualname__}".encode() + b";")
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        h.update(b"C" + f"{cls.__module__}.{cls.__qualname__}".encode() + b":")
        for f in dataclasses.fields(obj):
            _update(h, f.name)
            _update(h, getattr(obj, f.name))
    else:
        raise TypeError(
            f"cannot fingerprint object of type {type(obj).__name__}; "
            "supported kinds are primitives, numpy arrays/scalars, "
            "lists/tuples/dicts and dataclasses"
        )


def fingerprint(obj) -> str:
    """Stable SHA-256 hex digest of ``obj``'s content.

    Equal content always yields equal digests across processes and sessions
    (no ``id()``, no ``hash()`` randomization); any content difference —
    a config field, an image pixel, a container length — changes the digest.
    """
    h = hashlib.sha256()
    h.update(b"repro-artifact-v" + str(FORMAT_VERSION).encode() + b";")
    _update(h, obj)
    return h.hexdigest()


def atomic_write(target: Path, write_fn) -> Path:
    """Write a file via temp-file + rename so readers never see a torn write.

    ``write_fn`` receives the open binary file object.  On any failure the
    temp file is removed and ``target`` is left exactly as it was — an
    interrupted write can never clobber a previously good file.
    """
    fd, tmp = tempfile.mkstemp(dir=target.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            write_fn(fh)
        os.replace(tmp, target)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return target


class ArtifactStore:
    """Disk cache mapping fingerprints to pickled stage payloads.

    The store never interprets payloads; correctness lives entirely in the
    fingerprint that addresses them.  Reads of missing/corrupt entries
    return ``None`` (and count as misses) so a damaged cache degrades to
    recomputation, never to an error or a wrong result.

    ``max_bytes`` bounds the on-disk footprint: every ``save`` that pushes
    the store past the budget evicts least-recently-used entries (recency
    is the file mtime, refreshed on every hit) until the store fits again.
    The just-written artifact is never evicted, even when it exceeds the
    budget by itself — a store that cannot retain the artifact it was just
    asked to keep would silently disable caching.  Eviction is safe by the
    same argument as corruption: a future read of an evicted key is a miss
    and the stage recomputes.
    """

    def __init__(self, root: str | Path, max_bytes: int | None = None):
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1 or None, got {max_bytes}")
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def load(self, key: str):
        """The payload stored under ``key``, or ``None`` on a miss."""
        target = self.path(key)
        try:
            with open(target, "rb") as fh:
                payload = pickle.load(fh)
        except Exception:
            # Unpickling a stale entry can raise nearly anything (missing
            # modules after a refactor, __setstate__ errors, truncation);
            # all of it means "not usable", i.e. a miss.
            self.misses += 1
            return None
        try:
            # Mark recency for LRU eviction; best-effort (a read-only
            # store is still a working cache, just with FIFO eviction).
            os.utime(target)
        except OSError:
            pass
        self.hits += 1
        return payload

    def save(self, key: str, payload) -> Path:
        """Atomically persist ``payload`` under ``key``, then GC to budget."""
        self.root.mkdir(parents=True, exist_ok=True)
        written = atomic_write(
            self.path(key),
            lambda fh: pickle.dump(payload, fh,
                                   protocol=pickle.HIGHEST_PROTOCOL),
        )
        self._gc(keep=written)
        return written

    def total_bytes(self) -> int:
        """Current on-disk size of every stored artifact."""
        if not self.root.is_dir():
            return 0
        return sum(entry.stat().st_size for entry in self.root.glob("*.pkl"))

    def _gc(self, keep: Path) -> None:
        """Evict least-recently-used entries until the store fits the budget."""
        if self.max_bytes is None:
            return
        entries = []
        total = 0
        for entry in self.root.glob("*.pkl"):
            try:
                stat = entry.stat()
            except OSError:
                continue  # concurrently removed
            total += stat.st_size
            if entry != keep:
                entries.append((stat.st_mtime, entry.name, stat.st_size, entry))
        entries.sort()  # oldest mtime first; name breaks same-second ties
        for _, _, size, entry in entries:
            if total <= self.max_bytes:
                break
            try:
                entry.unlink()
            except OSError:
                continue
            total -= size
            self.evictions += 1

    def __contains__(self, key: str) -> bool:
        return self.path(key).exists()

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.pkl"))

    def clear(self) -> int:
        """Delete every stored artifact; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for entry in self.root.glob("*.pkl"):
                entry.unlink()
                removed += 1
        return removed
