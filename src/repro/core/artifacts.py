"""Content-addressed artifact store for pipeline stage outputs.

Every stage output is addressed by a *fingerprint*: a SHA-256 digest of the
stage's configuration, its position in the stage chain, and the content of
everything it consumes (dataset images, crowd results, upstream stage
fingerprints).  Two runs that would compute the same artifact therefore hash
to the same key, and the second run loads the pickled artifact instead of
recomputing it — this is what lets the ablation sweeps (Figures 9-11,
Table 4) share one crowd run and one feature matrix across settings.

:func:`fingerprint` canonicalizes the value kinds that appear in pipeline
configs and artifacts — dataclasses, numpy arrays and scalars, containers,
primitives — into a stable byte stream.  Unknown types raise instead of
hashing their ``repr``, so a silently unstable key can never corrupt cache
correctness.

:class:`ArtifactStore` is deliberately dumb: flat directory of
``<digest>.pkl`` files, atomic writes (temp file + ``os.replace``), corrupt
or unreadable entries treated as misses, optional size-bounded LRU
eviction (``max_bytes``).  Hit/miss counters feed the
``pipeline_cache`` benchmark and the stage-execution assertions in the test
suite.
"""

from __future__ import annotations

import dataclasses
import hashlib
import inspect
import os
import pickle
import tempfile
from pathlib import Path

import numpy as np

__all__ = [
    "fingerprint",
    "ArtifactStore",
    "atomic_write",
    "ProfileStore",
    "LocalDirProfileStore",
    "HttpProfileStore",
    "open_profile_store",
]

# Bump to invalidate every previously written artifact (e.g. when a stage's
# semantics change without its config changing).
FORMAT_VERSION = 1


def _update(h, obj) -> None:
    """Feed one canonicalized value into the running hash.

    Every branch writes a type tag before the payload so values of different
    types can never collide ("1" vs 1 vs True), and containers write their
    length so concatenations can't alias ([["a"], []] vs [[], ["a"]]).
    """
    if obj is None:
        h.update(b"N")
    elif isinstance(obj, (bool, np.bool_)):
        h.update(b"B1" if obj else b"B0")
    elif isinstance(obj, (int, np.integer)):
        h.update(b"I" + str(int(obj)).encode() + b";")
    elif isinstance(obj, (float, np.floating)):
        h.update(b"F" + float(obj).hex().encode() + b";")
    elif isinstance(obj, str):
        data = obj.encode()
        h.update(b"S" + str(len(data)).encode() + b":" + data)
    elif isinstance(obj, bytes):
        h.update(b"Y" + str(len(obj)).encode() + b":" + obj)
    elif isinstance(obj, np.ndarray):
        if obj.dtype.hasobject:
            raise TypeError(
                "cannot fingerprint object-dtype arrays: their raw bytes "
                "are memory addresses, not content"
            )
        arr = np.ascontiguousarray(obj)
        h.update(b"A" + str(arr.dtype).encode() + str(arr.shape).encode())
        h.update(arr.tobytes())
    elif isinstance(obj, (list, tuple)):
        h.update((b"L" if isinstance(obj, list) else b"T")
                 + str(len(obj)).encode() + b":")
        for item in obj:
            _update(h, item)
    elif isinstance(obj, (dict,)):
        keys = sorted(obj, key=repr)
        h.update(b"D" + str(len(keys)).encode() + b":")
        for key in keys:
            _update(h, key)
            _update(h, obj[key])
    elif inspect.isroutine(obj):
        # Functions appear in configs as named operations (e.g. PolicyOp's
        # apply); their stable identity is where they live, not their bytes.
        # Lambdas have no such identity (every one is '<lambda>' and edits
        # to the body are invisible), so they must not be hashable here.
        if "<lambda>" in obj.__qualname__:
            raise TypeError(
                "cannot fingerprint lambdas: they have no stable identity; "
                "use a named module-level function"
            )
        h.update(b"R" + f"{obj.__module__}.{obj.__qualname__}".encode() + b";")
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        h.update(b"C" + f"{cls.__module__}.{cls.__qualname__}".encode() + b":")
        for f in dataclasses.fields(obj):
            _update(h, f.name)
            _update(h, getattr(obj, f.name))
    else:
        raise TypeError(
            f"cannot fingerprint object of type {type(obj).__name__}; "
            "supported kinds are primitives, numpy arrays/scalars, "
            "lists/tuples/dicts and dataclasses"
        )


def fingerprint(obj) -> str:
    """Stable SHA-256 hex digest of ``obj``'s content.

    Equal content always yields equal digests across processes and sessions
    (no ``id()``, no ``hash()`` randomization); any content difference —
    a config field, an image pixel, a container length — changes the digest.
    """
    h = hashlib.sha256()
    h.update(b"repro-artifact-v" + str(FORMAT_VERSION).encode() + b";")
    _update(h, obj)
    return h.hexdigest()


def atomic_write(target: Path, write_fn) -> Path:
    """Write a file via temp-file + rename so readers never see a torn write.

    ``write_fn`` receives the open binary file object.  On any failure the
    temp file is removed and ``target`` is left exactly as it was — an
    interrupted write can never clobber a previously good file.
    """
    fd, tmp = tempfile.mkstemp(dir=target.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            write_fn(fh)
        os.replace(tmp, target)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return target


class ArtifactStore:
    """Disk cache mapping fingerprints to pickled stage payloads.

    The store never interprets payloads; correctness lives entirely in the
    fingerprint that addresses them.  Reads of missing/corrupt entries
    return ``None`` (and count as misses) so a damaged cache degrades to
    recomputation, never to an error or a wrong result.

    ``max_bytes`` bounds the on-disk footprint: every ``save`` that pushes
    the store past the budget evicts least-recently-used entries (recency
    is the file mtime, refreshed on every hit) until the store fits again.
    The just-written artifact is never evicted, even when it exceeds the
    budget by itself — a store that cannot retain the artifact it was just
    asked to keep would silently disable caching.  Eviction is safe by the
    same argument as corruption: a future read of an evicted key is a miss
    and the stage recomputes.
    """

    def __init__(self, root: str | Path, max_bytes: int | None = None):
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1 or None, got {max_bytes}")
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def load(self, key: str):
        """The payload stored under ``key``, or ``None`` on a miss."""
        target = self.path(key)
        try:
            with open(target, "rb") as fh:
                payload = pickle.load(fh)
        except Exception:
            # Unpickling a stale entry can raise nearly anything (missing
            # modules after a refactor, __setstate__ errors, truncation);
            # all of it means "not usable", i.e. a miss.
            self.misses += 1
            return None
        try:
            # Mark recency for LRU eviction; best-effort (a read-only
            # store is still a working cache, just with FIFO eviction).
            os.utime(target)
        except OSError:
            pass
        self.hits += 1
        return payload

    def save(self, key: str, payload) -> Path:
        """Atomically persist ``payload`` under ``key``, then GC to budget."""
        self.root.mkdir(parents=True, exist_ok=True)
        written = atomic_write(
            self.path(key),
            lambda fh: pickle.dump(payload, fh,
                                   protocol=pickle.HIGHEST_PROTOCOL),
        )
        self._gc(keep=written)
        return written

    def total_bytes(self) -> int:
        """Current on-disk size of every stored artifact."""
        if not self.root.is_dir():
            return 0
        return sum(entry.stat().st_size for entry in self.root.glob("*.pkl"))

    def _gc(self, keep: Path) -> None:
        """Evict least-recently-used entries until the store fits the budget."""
        if self.max_bytes is None:
            return
        entries = []
        total = 0
        for entry in self.root.glob("*.pkl"):
            try:
                stat = entry.stat()
            except OSError:
                continue  # concurrently removed
            total += stat.st_size
            if entry != keep:
                entries.append((stat.st_mtime, entry.name, stat.st_size, entry))
        entries.sort()  # oldest mtime first; name breaks same-second ties
        for _, _, size, entry in entries:
            if total <= self.max_bytes:
                break
            try:
                entry.unlink()
            except OSError:
                continue
            total -= size
            self.evictions += 1

    def __contains__(self, key: str) -> bool:
        return self.path(key).exists()

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.pkl"))

    def clear(self) -> int:
        """Delete every stored artifact; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for entry in self.root.glob("*.pkl"):
                entry.unlink()
                removed += 1
        return removed


class ProfileStore:
    """Shared store of saved serving profiles, keyed by fingerprint.

    The fleet-deployment seam: fit hosts ``save`` a profile's bytes under
    its ``serving_fingerprint()``, serving hosts ``load`` (or ``path``)
    by fingerprint at startup — so every member of a fleet provably
    serves the same content-addressed profile, with no shared filesystem
    assumed.  The API is the :class:`ArtifactStore` verb set —
    ``load``/``save``/``path`` — but payloads are the *opaque bytes* of
    a profile file (``InspectorGadget.save`` output), never pickles, and
    keys are serving fingerprints, never stage digests.

    Two backends ship: :class:`LocalDirProfileStore` (a directory,
    possibly network-mounted — the reference) and
    :class:`HttpProfileStore` (pulls from a serving host's
    ``GET /v1/profiles/<fingerprint>`` endpoint).  :func:`open_profile_store`
    picks by spec; the CLI's ``--profile-store`` feeds it directly.
    """

    def load(self, key: str) -> bytes | None:
        """Profile bytes stored under fingerprint ``key``, or ``None``."""
        raise NotImplementedError

    def save(self, key: str, payload: bytes) -> Path:
        """Persist profile bytes under fingerprint ``key``."""
        raise NotImplementedError

    def path(self, key: str) -> Path:
        """A local filesystem path holding the profile — what loaders
        (``InspectorGadget.load``, ``ServingPool``) consume.  Raises
        ``FileNotFoundError`` when the store has no such profile."""
        raise NotImplementedError

    def publish(self, profile_path: str | Path) -> str:
        """Copy a saved profile file into the store under its serving
        fingerprint; returns the fingerprint (the key to serve it by)."""
        from repro.core.pipeline import InspectorGadget

        profile_path = Path(profile_path)
        key = InspectorGadget.load(profile_path).serving_fingerprint()
        self.save(key, profile_path.read_bytes())
        return key


class LocalDirProfileStore(ProfileStore):
    """Reference backend: a flat directory of ``<fingerprint>.igz`` files.

    Saves are atomic (temp + rename), so a serving host reading the
    directory mid-publish sees either the whole profile or none of it.
    Point several hosts at one network mount and this *is* the shared
    store.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)

    def path(self, key: str) -> Path:
        target = self.root / f"{key}.igz"
        if not target.is_file():
            raise FileNotFoundError(
                f"profile store {self.root} has no profile with "
                f"fingerprint {key!r}"
            )
        return target

    def load(self, key: str) -> bytes | None:
        try:
            return (self.root / f"{key}.igz").read_bytes()
        except OSError:
            return None

    def save(self, key: str, payload: bytes) -> Path:
        self.root.mkdir(parents=True, exist_ok=True)
        return atomic_write(
            self.root / f"{key}.igz", lambda fh: fh.write(payload)
        )


class HttpProfileStore(ProfileStore):
    """Read-only backend over a serving host's profiles endpoint.

    ``load`` GETs ``<base_url>/v1/profiles/<fingerprint>`` (either HTTP
    front end, or a fleet router, serves it); a 404 is ``None``, like a
    local miss.  ``path`` downloads into ``cache_dir`` atomically so
    loaders that need a real file get one; repeat calls reuse the cached
    copy — content-addressed keys make staleness impossible.  ``save``
    raises: publishing goes through a writable store on the fit host.
    """

    def __init__(self, base_url: str, cache_dir: str | Path | None = None):
        self.base_url = base_url.rstrip("/")
        if not self.base_url.startswith(("http://", "https://")):
            raise ValueError(
                f"HttpProfileStore needs an http(s) URL, got {base_url!r}"
            )
        self.cache_dir = Path(
            cache_dir if cache_dir is not None
            else Path(tempfile.gettempdir()) / "repro-profile-cache"
        )

    def load(self, key: str) -> bytes | None:
        import urllib.error
        import urllib.request

        try:
            with urllib.request.urlopen(
                f"{self.base_url}/v1/profiles/{key}", timeout=60.0
            ) as resp:
                return resp.read()
        except urllib.error.HTTPError as err:
            with err:
                if err.code == 404:
                    return None
                raise OSError(
                    f"profile store {self.base_url} answered HTTP "
                    f"{err.code} for fingerprint {key!r}"
                ) from err

    def save(self, key: str, payload: bytes) -> Path:
        raise OSError(
            f"profile store {self.base_url} is read-only (profiles are "
            "published on the fit host; serving hosts only pull)"
        )

    def path(self, key: str) -> Path:
        target = self.cache_dir / f"{key}.igz"
        if target.is_file():
            return target
        payload = self.load(key)
        if payload is None:
            raise FileNotFoundError(
                f"profile store {self.base_url} has no profile with "
                f"fingerprint {key!r}"
            )
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        return atomic_write(target, lambda fh: fh.write(payload))


def open_profile_store(spec: str,
                       cache_dir: str | Path | None = None) -> ProfileStore:
    """Open the profile store named by ``spec``.

    ``http(s)://...`` opens an :class:`HttpProfileStore` (read-only pull
    from a serving host); anything else is a directory path for
    :class:`LocalDirProfileStore`.  This is the resolver behind the
    CLI's ``--profile-store``.
    """
    if spec.startswith(("http://", "https://")):
        return HttpProfileStore(spec, cache_dir=cache_dir)
    return LocalDirProfileStore(spec)
