"""Head-to-head: Inspector Gadget vs the paper's baselines on one dataset.

Runs every labeling method from Section 6 — Inspector Gadget, Snuba,
GOGGLES, self-learning CNNs (VGG / MobileNet-style) and transfer learning —
with a matched annotation budget on the Product (scratch) dataset, and
prints a one-row slice of Figure 9.

Run:  python examples/compare_baselines.py
"""

from repro.eval.experiments import (
    ExperimentProfile,
    prepare_context,
    run_goggles,
    run_inspector_gadget,
    run_self_learning,
    run_snuba,
    run_transfer,
)
from repro.utils.tables import format_table


def main() -> None:
    profile = ExperimentProfile(
        scale=0.1, n_images=140, target_defective=10,
        n_policy=10, n_gan=10, policy_max_combos=4,
        rgan_epochs=80, labeler_max_iter=60,
        cnn_epochs=20, cnn_input=(48, 48),
        pretext_per_class=12, pretext_epochs=6, seed=0,
    )
    ctx = prepare_context("product_scratch", profile, dev_budget=40)
    print(f"dataset {ctx.name}: dev {len(ctx.dev)} images "
          f"({ctx.dev.n_defective} defective), test pool {len(ctx.test)}")

    results = {}
    print("running Inspector Gadget (crowd + augment + tuned labeler)...")
    results["Inspector Gadget"], _ = run_inspector_gadget(ctx)
    print("running Snuba over the same primitives...")
    results["Snuba"] = run_snuba(ctx)
    print("running GOGGLES (no dev-label training)...")
    results["GOGGLES"] = run_goggles(ctx)
    print("running self-learning VGG-style CNN...")
    results["SL (VGG-style)"] = run_self_learning(ctx, arch="vgg")
    print("running self-learning MobileNet-style CNN...")
    results["SL (MobileNet-style)"] = run_self_learning(ctx, arch="mobilenet")
    print("running transfer learning (pretext-pretrained CNN)...")
    results["TL (pre-trained)"] = run_transfer(ctx)

    rows = sorted(results.items(), key=lambda kv: kv[1], reverse=True)
    print()
    print(format_table(["Method", "Weak-label F1"],
                       [[k, v] for k, v in rows],
                       title=f"{ctx.name}, dev budget 40 (one Figure 9 point)"))


if __name__ == "__main__":
    main()
