"""Extensions: automated proposals instead of a crowd + novel-defect alarms.

Two future-work directions the paper sketches, both implemented here:

* Section 3 notes the crowdsourcing workflow could be automated with region
  proposal networks — ``repro.crowd.auto_annotate`` is a training-data-free
  statistical stand-in that proposes anomalous regions as patterns.
* Section 7 notes the fixed-defect-set assumption could be lifted with novel
  class detection — ``repro.labeler.NoveltyDetector`` flags images whose
  similarity profile matches no known pattern.

Run:  python examples/no_crowd_automation.py
"""

import numpy as np

from repro import f1_score, make_dataset
from repro.crowd import AutoProposalConfig, auto_annotate
from repro.datasets import stratified_split
from repro.features import FeatureGenerator
from repro.labeler import NoveltyDetector, tune_labeler


def main() -> None:
    dataset = make_dataset("product_scratch", scale=0.1, seed=11,
                           n_images=120)
    print(f"{len(dataset)} images; no crowd available — using automated "
          f"anomaly proposals instead")

    # 1. Automated annotation on a small budget of images.
    dev, rest = stratified_split(dataset, 40, seed=0)
    budget = list(range(len(dev)))
    patterns = auto_annotate(dev, indices=budget,
                             config=AutoProposalConfig(z_threshold=2.5))
    print(f"auto-proposer extracted {len(patterns)} candidate patterns "
          f"from {len(budget)} images")

    # 2. The usual IG tail: features + tuned labeler.
    fg = FeatureGenerator(patterns)
    x_dev = fg.transform(dev).values
    tuned = tune_labeler(x_dev, dev.labels, n_classes=2, task="binary",
                         seed=0, max_iter=60, min_per_class=2)
    x_rest = fg.transform(rest).values
    f1 = f1_score(rest.labels, tuned.labeler.predict(x_rest), task="binary")
    print(f"weak-label F1 with zero human annotations: {f1:.3f} "
          f"(architecture {tuned.best_hidden})")

    # 3. Novelty alarm: a defect type the patterns have never seen.
    detector = NoveltyDetector(target_false_rate=0.05).fit(x_dev)
    known = rest.images[0].image
    h, w = dataset.image_shape
    yy, xx = np.mgrid[:h, :w]
    alien = np.clip(0.5 + 0.4 * np.sin(yy * xx / 9.0), 0, 1)  # moiré — unseen
    scores = detector.score(fg.transform_images([known, alien]).values)
    report = detector.detect(fg.transform_images([known, alien]).values)
    print(f"novelty scores: known image {scores[0]:.2f}, "
          f"alien surface {scores[1]:.2f} "
          f"(threshold {report.threshold:.2f}) -> "
          f"alien flagged: {bool(report.is_novel[1])}")


if __name__ == "__main__":
    main()
