"""Serving quickstart: from a fitted profile to a multi-process pool.

Fits Inspector Gadget on a small synthetic KSDD pool, saves the serving
profile, then brings up a 2-worker :class:`repro.serving.ServingPool` and
exercises the product surface: batch and single-image requests (verified
byte-identical to single-process ``predict``), async submits, health and
ping, both HTTP front ends — threaded and asyncio — driven by a stdlib
``urllib`` client (each JSON response asserted equal to in-process
``predict``, so this example doubles as a transport integration check),
gzip response negotiation, and a graceful drain/shutdown.  Finishes with
a micro throughput probe so the pool's request pipeline is visible end to
end.

The same pool is available from the command line::

    python -m repro.serving --profile ksdd.igz --workers 2 --images a.npy
    python -m repro.serving --profile ksdd.igz --workers 2 \
        --http 127.0.0.1:8765 --http-backend asyncio

Run:  python examples/serving_quickstart.py
"""

import gzip
import json
import shutil
import tempfile
import time
import urllib.request
from pathlib import Path

import numpy as np

from repro import InspectorGadget, InspectorGadgetConfig, make_dataset
from repro.augment import AugmentConfig
from repro.crowd import WorkflowConfig
from repro.serving import ServingPool, serve_http, serve_http_async
from repro.serving.protocol import encode_image


def fit_profile(workdir: Path):
    """Train once: the pool only ever sees the saved profile."""
    dataset = make_dataset("ksdd", scale=0.1, seed=7, n_images=120)
    config = InspectorGadgetConfig(
        workflow=WorkflowConfig(n_workers=3, target_defective=8),
        augment=AugmentConfig(mode="policy", n_policy=8),
        labeler_max_iter=60,
        seed=0,
    )
    ig = InspectorGadget(config)
    ig.fit(dataset)
    path = ig.save(workdir / "ksdd.igz")
    print(f"profile saved: {path} ({path.stat().st_size / 1024:.0f} KiB, "
          f"fingerprint {ig.serving_fingerprint()[:12]})")
    return path, dataset


def run(workdir: Path) -> None:
    profile_path, dataset = fit_profile(workdir)
    images = [item.image for item in dataset.images]
    reference = InspectorGadget.load(profile_path)

    with ServingPool(profile_path, workers=2, max_batch=8, max_wait_ms=2.0,
                     warmup_shapes=(dataset.image_shape,)) as pool:
        health = pool.health()
        rtts = [f"{rtt * 1000:.1f}ms" for rtt in pool.ping().values()]
        print(f"pool ready: {len(health.workers)} workers "
              f"(pids {[w.pid for w in health.workers]}), ping {rtts}")

        # Batch request — byte-identical to single-process predict.
        weak = pool.predict(images[:32])
        assert (weak.probs.tobytes()
                == reference.predict(images[:32]).probs.tobytes())
        print(f"batch of 32: defect rate {weak.labels.mean():.2f}, "
              "byte-identical to single-process: True")

        # Single-image request — a bare 2-D array works.
        one = pool.predict(images[40])
        print(f"single image: label {one.labels[0]}, "
              f"confidence {one.confidence[0]:.3f}")

        # Async submits from a bursty client; the dispatcher micro-batches
        # them into a handful of IPC round-trips.
        handles = [pool.submit(images[i]) for i in range(48, 60)]
        results = [handle.result(60) for handle in handles]
        print(f"async burst: {len(results)} responses, "
              f"{sum(w.labels[0] for w in results)} flagged defective")

        # HTTP front end: the same pool on a TCP socket (port 0 binds an
        # ephemeral port), driven here by a stdlib urllib client.  JSON
        # floats round-trip exactly, so the parsed probabilities must be
        # byte-identical to in-process predict — asserted, which makes
        # this example an integration check for the transport.
        with serve_http(pool, host="127.0.0.1", port=0) as front:
            body = json.dumps({
                "images": [encode_image(img) for img in images[:8]],
            }).encode()
            request = urllib.request.Request(
                front.url + "/v1/label", data=body, method="POST",
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=120) as resp:
                answer = json.loads(resp.read())
            http_probs = np.array(answer["probs"], dtype=np.float64)
            assert (http_probs.tobytes()
                    == reference.predict(images[:8]).probs.tobytes())
            with urllib.request.urlopen(front.url + "/healthz",
                                        timeout=30) as resp:
                healthz = json.loads(resp.read())
            print(f"HTTP at {front.url}: labeled {answer['n_images']} "
                  "images byte-identical to in-process predict, healthz "
                  f"ok={healthz['ok']}")

        # Asyncio front end: the high-concurrency backend, same endpoint
        # surface and byte-identical answers over one event loop instead
        # of one thread per connection.  Also demonstrate gzip response
        # negotiation — large responses compress when the client asks.
        with serve_http_async(pool, host="127.0.0.1", port=0) as front:
            request = urllib.request.Request(
                front.url + "/v1/label", data=body, method="POST",
                headers={"Content-Type": "application/json",
                         "Accept-Encoding": "gzip"},
            )
            with urllib.request.urlopen(request, timeout=120) as resp:
                encoding = resp.headers.get("Content-Encoding")
                raw = resp.read()
            payload = gzip.decompress(raw) if encoding == "gzip" else raw
            aio_probs = np.array(json.loads(payload)["probs"],
                                 dtype=np.float64)
            assert aio_probs.tobytes() == http_probs.tobytes()
            print(f"asyncio HTTP at {front.url}: byte-identical to the "
                  f"threaded front end, response Content-Encoding="
                  f"{encoding} ({len(raw)} bytes on the wire)")

        # Throughput probe: one pass of the whole pool of images.
        t0 = time.time()
        pool.predict(images)
        elapsed = time.time() - t0
        print(f"throughput probe: {len(images) / elapsed:.1f} imgs/sec "
              f"({len(images)} images in {elapsed:.2f}s)")

        drained = pool.drain(timeout=30)
        print(f"drained cleanly: {drained}")
    print("pool shut down")


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="ig-serving-"))
    try:
        run(workdir)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
