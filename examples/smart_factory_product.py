"""Smart-factory scenario: label product images, then train an end model.

Recreates the paper's running example (Figure 1): a factory produces long
rectangular product images; only a small part of each image may contain a
defect (here: stamping marks at fixed positions).  Inspector Gadget turns a
small annotation budget into weak labels at scale, and an end CNN trained on
dev + weak labels beats one trained on the dev set alone (Table 5's story).

Run:  python examples/smart_factory_product.py
"""

import numpy as np

from repro import InspectorGadget, InspectorGadgetConfig, f1_score
from repro.augment import AugmentConfig, PolicySearchConfig, RGANConfig
from repro.crowd import WorkflowConfig
from repro.datasets import ProductConfig, make_product, stratified_split
from repro.eval.end_model import end_model_comparison


def main() -> None:
    dataset = make_product(
        ProductConfig(variant="stamping", n_images=160, scale=0.1),
        seed=3,
    )
    h, w = dataset.image_shape
    print(f"factory line: {len(dataset)} product images of {h}x{w} px, "
          f"{dataset.n_defective} with stamping defects")

    ig = InspectorGadget(InspectorGadgetConfig(
        workflow=WorkflowConfig(n_workers=3, target_defective=10),
        augment=AugmentConfig(
            mode="both", n_policy=10, n_gan=10,
            policy_search=PolicySearchConfig(max_combos=4,
                                             labeler_max_iter=30),
            rgan=RGANConfig(epochs=80, side_cap=16),
        ),
        labeler_max_iter=80,
        seed=1,
    ))
    report = ig.fit(dataset, dev_budget=50)
    print(f"crowd annotated {report.dev_size} images; "
          f"{report.n_total_patterns} patterns after augmentation")

    # Weak-label the rest of the line's output, keep a gold test split.
    rest = dataset.subset([i for i in range(len(dataset))
                           if i not in set(ig.crowd_result.dev_indices)])
    pool, test = stratified_split(rest, len(rest) // 2, seed=0)
    weak = ig.predict(pool)
    weak_f1 = f1_score(pool.labels, weak.labels, task="binary")
    print(f"weak labels on the pool of {len(pool)}: F1 = {weak_f1:.3f}")

    # Train the end quality-control model both ways (paper's Table 5).
    f1_dev, f1_weak = end_model_comparison(
        ig.crowd_result.dev, pool, weak, test,
        arch="vgg", input_shape=(48, 48), epochs=30, seed=0,
    )
    print(f"end model (VGG-style) trained on dev only:        "
          f"F1 = {f1_dev:.3f}")
    print(f"end model trained on dev + IG weak labels:        "
          f"F1 = {f1_weak:.3f}")
    if f1_weak > f1_dev:
        print("weak labels lifted the end model — the annotation budget "
              "went further than manual labeling alone")


if __name__ == "__main__":
    main()
