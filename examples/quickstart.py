"""Quickstart: weak-label a surface-defect dataset with Inspector Gadget.

Generates a synthetic KSDD-style dataset (electrical commutators with crack
defects), runs the full staged pipeline — simulated crowdsourcing, pattern
augmentation, NCC feature generation, tuned MLP labeler — and scores the
weak labels against the gold labels of the images the crowd never saw.
Then it demonstrates the serving path: save the fitted profile, reload it,
and re-fit against the artifact cache (every stage loads from disk).

Run:  python examples/quickstart.py
"""

import shutil
import tempfile
import time
from pathlib import Path

from repro import InspectorGadget, InspectorGadgetConfig, f1_score, make_dataset
from repro.augment import AugmentConfig, PolicySearchConfig, RGANConfig
from repro.crowd import WorkflowConfig


def run(workdir: Path) -> None:
    # A scaled-down KSDD: 160 images, ~21 defective, at 1/10 resolution.
    dataset = make_dataset("ksdd", scale=0.1, seed=7, n_images=160)
    print(f"dataset: {dataset.name}, {len(dataset)} images "
          f"({dataset.n_defective} defective), shape {dataset.image_shape}")

    config = InspectorGadgetConfig(
        # Cache stage outputs so re-fitting with this config is instant.
        cache_dir=str(workdir / "artifacts"),
        # Crowd annotates random images until 10 defective ones are found.
        workflow=WorkflowConfig(n_workers=3, target_defective=10),
        # Light augmentation budgets so the example finishes in ~a minute.
        augment=AugmentConfig(
            mode="both", n_policy=10, n_gan=10,
            policy_search=PolicySearchConfig(max_combos=4,
                                             labeler_max_iter=30),
            rgan=RGANConfig(epochs=80, side_cap=16),
        ),
        labeler_max_iter=80,
        seed=0,
    )
    ig = InspectorGadget(config)
    report = ig.fit(dataset)
    print(f"dev set: {report.dev_size} images "
          f"({report.dev_defective} defective)")
    print(f"patterns: {report.n_crowd_patterns} from the crowd, "
          f"{report.n_total_patterns} after augmentation")
    print(f"labeler architecture chosen by tuning: "
          f"{report.chosen_architecture} (dev CV F1 {report.dev_cv_f1:.3f})")

    # Weak-label every image the crowd did not annotate.
    unlabeled_idx = [i for i in range(len(dataset))
                     if i not in set(ig.crowd_result.dev_indices)]
    unlabeled = dataset.subset(unlabeled_idx)
    weak = ig.predict(unlabeled)
    f1 = f1_score(unlabeled.labels, weak.labels, task="binary")
    print(f"weak labels for {len(weak)} images: F1 = {f1:.3f} "
          f"(predicted defect rate {weak.labels.mean():.2f}, "
          f"true rate {unlabeled.labels.mean():.2f})")

    confident = weak.filter_confident(0.9)
    print(f"{len(confident)} of {len(weak)} weak labels have >= 0.9 "
          f"confidence — ready for end-model training")

    # -- serving path: save the profile, reload, predict identically --------
    profile_path = ig.save(workdir / "ksdd.igz")
    server = InspectorGadget.load(profile_path)
    served = server.predict(unlabeled)
    identical = served.probs.tobytes() == weak.probs.tobytes()
    print(f"saved profile to {profile_path} "
          f"({profile_path.stat().st_size / 1024:.0f} KiB); reloaded "
          f"predictions byte-identical: {identical}")

    # -- artifact cache: an identical fit loads every stage from disk -------
    t0 = time.time()
    warm = InspectorGadget(config)
    warm.fit(dataset)
    print(f"warm re-fit in {time.time() - t0:.2f}s — "
          f"{warm.last_run.n_cached} stages cached "
          f"({', '.join(warm.last_run.cached)}), "
          f"{warm.last_run.n_executed} executed")


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="ig-quickstart-"))
    try:
        run(workdir)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
