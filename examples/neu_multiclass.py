"""Multi-class surface-defect classification on the NEU-style dataset.

NEU has no defect-free images; the task is deciding *which* of six defect
types (rolled-in scale, patches, crazing, pitted surface, inclusion,
scratches) an image shows.  Inspector Gadget handles this by keeping one
pattern pool per class and a softmax MLP labeler.

Run:  python examples/neu_multiclass.py
"""

import numpy as np

from repro import InspectorGadget, InspectorGadgetConfig, f1_score
from repro.augment import AugmentConfig, PolicySearchConfig, RGANConfig
from repro.crowd import WorkflowConfig
from repro.datasets import NEUConfig, make_neu
from repro.eval.metrics import confusion_matrix


def main() -> None:
    dataset = make_neu(NEUConfig(per_class=20, scale=0.24), seed=5)
    print(f"NEU-style dataset: {len(dataset)} images, "
          f"{dataset.n_classes} defect classes, shape {dataset.image_shape}")

    ig = InspectorGadget(InspectorGadgetConfig(
        workflow=WorkflowConfig(n_workers=3, target_defective=10),
        augment=AugmentConfig(
            mode="policy", n_policy=12,
            policy_search=PolicySearchConfig(max_combos=4,
                                             labeler_max_iter=30),
            rgan=RGANConfig(epochs=60, side_cap=16),
        ),
        labeler_max_iter=80,
        seed=2,
    ))
    # Every NEU image is defective, so give the crowd a fixed budget
    # instead of a defective-count target.
    report = ig.fit(dataset, dev_budget=42)
    print(f"dev set {report.dev_size}; patterns {report.n_total_patterns}; "
          f"chosen MLP {report.chosen_architecture}")

    rest = dataset.subset([i for i in range(len(dataset))
                           if i not in set(ig.crowd_result.dev_indices)])
    weak = ig.predict(rest)
    macro_f1 = f1_score(rest.labels, weak.labels, task="multiclass")
    print(f"macro-F1 over 6 classes on {len(rest)} unseen images: "
          f"{macro_f1:.3f}")

    print("\nconfusion matrix (rows = true class, cols = predicted):")
    mat = confusion_matrix(rest.labels, weak.labels,
                           n_classes=dataset.n_classes)
    width = max(len(c) for c in dataset.class_names)
    for i, cls in enumerate(dataset.class_names):
        counts = " ".join(f"{int(v):3d}" for v in mat[i])
        print(f"  {cls:<{width}} {counts}")


if __name__ == "__main__":
    main()
